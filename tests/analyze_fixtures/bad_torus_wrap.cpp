// Self-test fixture: hand-rolled wrap arithmetic on Coord-typed values.
// The torus-wrap rule must flag exactly the lines carrying an expect()
// marker — raw % or / on a line that reads a Coord local/param, outside
// the audited ring helpers.

namespace ddpm::topo {

struct Coord {
  int v[4] = {0, 0, 0, 0};
  int& at(int i) { return v[i]; }
  int get(int i) const { return v[i]; }
  int& operator[](int i) { return v[i]; }
  int operator[](int i) const { return v[i]; }
};

}  // namespace ddpm::topo

namespace fixture {

// A torus neighbor computed with inline modular reduction instead of the
// ring helpers: classic off-by-one territory when dir can be negative.
int wrap_neighbor(const ddpm::topo::Coord& c, int k) {
  const int plus = (c[0] + 1) % k;  // ddpm-analyze: expect(torus-wrap)
  return plus;
}

int fold_distance(ddpm::topo::Coord a, int k) {
  int d = a[1] % k;  // ddpm-analyze: expect(torus-wrap)
  d += a[2] / 2;  // ddpm-analyze: expect(torus-wrap)
  return d;
}

}  // namespace fixture
