#include "attack/attacker.hpp"

#include <gtest/gtest.h>

#include <set>

#include "attack/spoof.hpp"
#include "topology/mesh.hpp"

namespace ddpm::attack {
namespace {

TEST(PickZombies, DistinctAndExcludesVictim) {
  topo::Mesh m({4, 4});
  netsim::Rng rng(1);
  const auto zombies = pick_zombies(m, 5, 7, rng);
  EXPECT_EQ(zombies.size(), 5u);
  const std::set<topo::NodeId> unique(zombies.begin(), zombies.end());
  EXPECT_EQ(unique.size(), 5u);
  EXPECT_EQ(unique.count(7), 0u);
  EXPECT_TRUE(std::is_sorted(zombies.begin(), zombies.end()));
}

TEST(PickZombies, CanTakeAllButVictim) {
  topo::Mesh m({3, 3});
  netsim::Rng rng(2);
  const auto zombies = pick_zombies(m, 8, 4, rng);
  EXPECT_EQ(zombies.size(), 8u);
  EXPECT_THROW(pick_zombies(m, 9, 4, rng), std::invalid_argument);
}

TEST(PickZombies, DifferentSeedsDifferentSets) {
  topo::Mesh m({8, 8});
  netsim::Rng a(1), b(2);
  EXPECT_NE(pick_zombies(m, 10, 0, a), pick_zombies(m, 10, 0, b));
}

TEST(Spoof, NoneUsesRealAddress) {
  pkt::AddressMap map(16);
  netsim::Rng rng(3);
  pkt::Packet p;
  apply_spoof(p, SpoofStrategy::kNone, map, 5, 9, rng);
  EXPECT_EQ(p.header.source(), map.address_of(5));
}

TEST(Spoof, RandomClusterIsValidButUsuallyWrong) {
  pkt::AddressMap map(64);
  netsim::Rng rng(4);
  int honest = 0;
  for (int i = 0; i < 1000; ++i) {
    pkt::Packet p;
    apply_spoof(p, SpoofStrategy::kRandomCluster, map, 5, 9, rng);
    EXPECT_TRUE(map.is_cluster_address(p.header.source()));
    honest += (map.node_of(p.header.source()) == 5u);
  }
  EXPECT_LT(honest, 60);  // ~1/64 of draws hit the real source by chance
}

TEST(Spoof, RandomAnyUsuallyOutsideCluster) {
  pkt::AddressMap map(16);
  netsim::Rng rng(5);
  int inside = 0;
  for (int i = 0; i < 1000; ++i) {
    pkt::Packet p;
    apply_spoof(p, SpoofStrategy::kRandomAny, map, 5, 9, rng);
    inside += map.is_cluster_address(p.header.source());
  }
  EXPECT_LT(inside, 5);
}

TEST(Spoof, VictimReflectUsesVictimAddress) {
  pkt::AddressMap map(16);
  netsim::Rng rng(6);
  pkt::Packet p;
  apply_spoof(p, SpoofStrategy::kVictimReflect, map, 5, 9, rng);
  EXPECT_EQ(p.header.source(), map.address_of(9));
}

TEST(AttackNames, Stable) {
  EXPECT_EQ(to_string(AttackKind::kUdpFlood), "udp-flood");
  EXPECT_EQ(to_string(AttackKind::kSynFlood), "syn-flood");
  EXPECT_EQ(to_string(AttackKind::kWorm), "worm");
  EXPECT_EQ(to_string(AttackKind::kNone), "none");
  EXPECT_EQ(to_string(SpoofStrategy::kRandomCluster), "random-cluster");
}

}  // namespace
}  // namespace ddpm::attack
