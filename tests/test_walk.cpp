#include "marking/walk.hpp"

#include <gtest/gtest.h>

#include "routing/router.hpp"
#include "topology/mesh.hpp"

namespace ddpm::mark {
namespace {

using topo::Coord;

TEST(Walk, RecordsFullPath) {
  topo::Mesh m({4, 4});
  const auto router = route::make_router("dor", m);
  const auto walk = walk_packet(m, *router, nullptr, 0, 15);
  ASSERT_TRUE(walk.delivered());
  EXPECT_EQ(walk.path.front(), 0u);
  EXPECT_EQ(walk.path.back(), 15u);
  EXPECT_EQ(int(walk.path.size()) - 1, walk.hops);
  EXPECT_EQ(walk.packet.hops, std::uint32_t(walk.hops));
}

TEST(Walk, PathRecordingCanBeDisabled) {
  topo::Mesh m({4, 4});
  const auto router = route::make_router("dor", m);
  WalkOptions options;
  options.record_path = false;
  const auto walk = walk_packet(m, *router, nullptr, 0, 15, options);
  EXPECT_TRUE(walk.delivered());
  EXPECT_TRUE(walk.path.empty());
}

TEST(Walk, SourceEqualsDestinationIsZeroHopDelivery) {
  topo::Mesh m({4, 4});
  const auto router = route::make_router("dor", m);
  const auto walk = walk_packet(m, *router, nullptr, 6, 6);
  EXPECT_TRUE(walk.delivered());
  EXPECT_EQ(walk.hops, 0);
}

TEST(Walk, TtlExpiryKillsPacket) {
  topo::Mesh m({8, 8});
  const auto router = route::make_router("dor", m);
  WalkOptions options;
  options.initial_ttl = 3;  // path needs 14 hops
  const auto walk = walk_packet(m, *router, nullptr, 0, 63, options);
  EXPECT_EQ(walk.outcome, WalkOutcome::kTtlExpired);
  EXPECT_EQ(walk.hops, 2);  // two successful hops, third decrement hits 0
}

TEST(Walk, TtlDecrementsPerHop) {
  topo::Mesh m({8, 8});
  const auto router = route::make_router("dor", m);
  const auto walk = walk_packet(m, *router, nullptr, 0, 7);  // 7 hops
  ASSERT_TRUE(walk.delivered());
  EXPECT_EQ(walk.packet.header.ttl(), 64 - 7);
}

TEST(Walk, SeededMarkingFieldSurvivesWithoutScheme) {
  topo::Mesh m({4, 4});
  const auto router = route::make_router("dor", m);
  const auto walk = walk_packet(m, *router, nullptr, 0, 3, {}, 0xabcd);
  ASSERT_TRUE(walk.delivered());
  EXPECT_EQ(walk.packet.marking_field(), 0xabcd);
}

TEST(Walk, GroundTruthFieldsSet) {
  topo::Mesh m({4, 4});
  const auto router = route::make_router("adaptive", m);
  const auto walk = walk_packet(m, *router, nullptr, 2, 13);
  EXPECT_EQ(walk.packet.true_source, 2u);
  EXPECT_EQ(walk.packet.dest_node, 13u);
}

}  // namespace
}  // namespace ddpm::mark
