// Broad integration coverage: the full detect->identify->block pipeline
// across the topology x scheme x router matrix, with per-cell sanity
// invariants (conservation, pipeline causality) and the scheme-specific
// quality expectations where they are unconditional.
#include <gtest/gtest.h>

#include <tuple>

#include "core/sis.hpp"

namespace ddpm::core {
namespace {

using Param = std::tuple<const char* /*topology*/, const char* /*scheme*/,
                         const char* /*router*/>;

class PipelineMatrix : public ::testing::TestWithParam<Param> {
 protected:
  ScenarioConfig config() const {
    ScenarioConfig c;
    c.cluster.topology = std::get<0>(GetParam());
    c.cluster.scheme = std::get<1>(GetParam());
    c.cluster.router = std::get<2>(GetParam());
    c.cluster.benign_rate_per_node = 0.0002;
    c.cluster.seed = 77;
    c.identifier = std::get<1>(GetParam());
    c.detect_rate_threshold = 0.004;
    c.duration = 250000;
    c.attack.kind = attack::AttackKind::kUdpFlood;
    const auto probe = topo::make_topology(c.cluster.topology);
    c.attack.victim = probe->num_nodes() - 1;
    netsim::Rng rng(5);
    c.attack.zombies = attack::pick_zombies(*probe, 3, c.attack.victim, rng);
    c.attack.rate_per_zombie = 0.008;
    c.attack.start_time = 20000;
    return c;
  }
};

TEST_P(PipelineMatrix, RunsAndHoldsInvariants) {
  SourceIdentificationSystem system(config());
  const ScenarioReport report = system.run();
  const auto& m = report.metrics;

  // Conservation: every injected packet is delivered, dropped, or still in
  // flight (bounded by a small residue).
  EXPECT_LE(m.delivered() + m.dropped(), m.injected());
  EXPECT_GE(m.delivered() + m.dropped() + 200, m.injected());

  // The flood is loud enough to detect on every substrate.
  ASSERT_TRUE(report.detection_time.has_value());
  EXPECT_GE(*report.detection_time, 20000u);

  // Causality: blocks can only exist if something was identified, and
  // every blocked node was named first.
  EXPECT_EQ(report.blocked_sources, report.identified_sources);
  EXPECT_EQ(report.true_positives + report.false_positives,
            report.identified_sources.size());

  // Latency sanity.
  if (m.delivered_benign > 0) {
    EXPECT_GT(m.latency_benign.mean(), 0.0);
    EXPECT_LE(m.latency_benign.mean(), m.latency_benign.max());
    EXPECT_GE(m.latency_benign_p99.value(), m.latency_benign.mean() * 0.5);
  }
}

TEST_P(PipelineMatrix, DdpmCellsArePerfect) {
  if (std::string(std::get<1>(GetParam())) != "ddpm") {
    GTEST_SKIP() << "DDPM-only assertion";
  }
  SourceIdentificationSystem system(config());
  const ScenarioReport report = system.run();
  EXPECT_EQ(report.true_positives, 3u);
  EXPECT_EQ(report.false_positives, 0u);
  EXPECT_LE(report.packets_to_first_identification, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PipelineMatrix,
    ::testing::Combine(::testing::Values("mesh:6x6", "torus:5x5",
                                         "hypercube:5"),
                       ::testing::Values("ddpm", "dpm", "ppm-full",
                                         "ppm-fragment"),
                       ::testing::Values("dor", "adaptive")));

}  // namespace
}  // namespace ddpm::core
