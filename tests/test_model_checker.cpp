// Bounded protocol model checker (src/verify/model): suite proofs, the
// lockstep fidelity contract against the real WormholeNetwork, symmetry
// on/off parity, and the disable-escape negative control whose deadlock
// witness must replay on the production engine.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "packet/packet.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"
#include "verify/model/explore.hpp"
#include "verify/model/proto_model.hpp"
#include "verify/model/replay.hpp"
#include "verify/model/suite.hpp"
#include "verify/model/witness.hpp"
#include "wormhole/wormhole.hpp"

namespace {

using namespace ddpm;
using namespace ddpm::verify::model;

TEST(ModelSuite, GridCoversTheRequiredDesignSpace) {
  const auto grid = model_suite_configs();
  ASSERT_GE(grid.size(), 8u);
  bool mesh = false, torus = false, cube = false;
  bool dor = false, adaptive = false, turn = false;
  for (const ModelOptions& opt : grid) {
    mesh |= opt.topology.rfind("mesh:", 0) == 0;
    torus |= opt.topology.rfind("torus:", 0) == 0;
    cube |= opt.topology.rfind("hypercube:", 0) == 0;
    dor |= opt.router == "dor";
    adaptive |= opt.router == "adaptive";
    turn |= opt.router == "west-first" || opt.router == "north-last";
  }
  EXPECT_TRUE(mesh && torus && cube);
  EXPECT_TRUE(dor && adaptive && turn);
}

TEST(ModelSuite, EveryConfigProvesAllFiveProperties) {
  const auto verdicts = run_model_suite();
  ASSERT_GE(verdicts.size(), 8u);
  for (const verify::ModelVerdict& v : verdicts) {
    SCOPED_TRACE(v.topology + " x " + v.router);
    EXPECT_TRUE(v.complete) << "state space truncated at " << v.states;
    EXPECT_TRUE(v.credit_conservation);
    EXPECT_TRUE(v.no_overflow);
    EXPECT_TRUE(v.no_loss);
    EXPECT_TRUE(v.escape_reachable);
    EXPECT_TRUE(v.bounded_progress);
    EXPECT_TRUE(v.pass) << v.note;
    EXPECT_GT(v.states, 0u);
  }
}

// ---------------------------------------------------------------------------
// Fidelity: the abstract model and the real network must agree on the
// protocol projection after EVERY event of a shared schedule. This is the
// contract that entitles model verdicts to speak about the engine.

std::vector<std::string> interleaved_schedule(const ProtoModel& model,
                                              int steps_between) {
  std::vector<std::string> events;
  int pair_index = 0;
  for (std::size_t k = 0; k < model.pairs().size() && k < 4; ++k) {
    const auto [src, dst] = model.pairs()[std::size_t(pair_index)];
    pair_index = (pair_index + 3) % int(model.pairs().size());
    std::ostringstream ev;
    ev << "inject " << src << ' ' << dst;
    events.push_back(ev.str());
    for (int s = 0; s < steps_between; ++s) events.push_back("step");
  }
  for (int s = 0; s < 24; ++s) events.push_back("step");
  return events;
}

void expect_lockstep(const ModelOptions& opt, bool use_soa_engine) {
  ProtoModel model(opt);
  const auto topo = topo::make_topology(opt.topology);
  const auto router = route::make_router(opt.router, *topo);
  wormhole::WormholeConfig config;
  config.adaptive_vcs = opt.adaptive_vcs;
  config.buffer_flits = opt.buffer_flits;
  config.disable_escape = opt.disable_escape;
  config.use_soa_engine = use_soa_engine;
  wormhole::WormholeNetwork net(*topo, *router, nullptr, config);

  const std::uint32_t payload =
      16u * std::uint32_t(opt.flits_per_packet) -
      std::uint32_t(pkt::IpHeader::kWireSize);

  ModelState s = model.initial();
  const auto events = interleaved_schedule(model, 2);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::string& event = events[i];
    if (event == "step") {
      model.step(s);
      net.step();
    } else {
      std::istringstream is(event.substr(7));
      int src = 0, dst = 0;
      is >> src >> dst;
      model.inject(s, src, dst);
      pkt::Packet packet;
      packet.dest_node = topo::NodeId(dst);
      packet.true_source = topo::NodeId(src);
      packet.payload_bytes = payload;
      net.inject(std::move(packet), topo::NodeId(src));
    }
    const ModelProjection want = model.project(s);
    const wormhole::ProtocolSnapshot got = net.snapshot_protocol();
    SCOPED_TRACE("event " + std::to_string(i) + " (" + event + "), engine=" +
                 (use_soa_engine ? "soa" : "reference"));
    ASSERT_EQ(want.occupancy.size(), got.occupancy.size());
    ASSERT_EQ(want.credits.size(), got.credits.size());
    ASSERT_EQ(want.allocated.size(), got.allocated.size());
    EXPECT_EQ(want.occupancy, got.occupancy);
    EXPECT_EQ(want.credits, got.credits);
    EXPECT_EQ(want.allocated, got.allocated);
    EXPECT_EQ(want.flits_in_flight, got.flits_in_flight);
    EXPECT_EQ(want.delivered, got.delivered);
  }
  // The schedule is long enough to drain the whole load: end-to-end
  // agreement, not just prefix agreement.
  EXPECT_EQ(model.project(s).flits_in_flight, 0u);
}

TEST(ModelFidelity, LockstepWithBothEnginesAcrossTheSuiteGrid) {
  for (const ModelOptions& opt : model_suite_configs()) {
    SCOPED_TRACE(opt.topology + " x " + opt.router);
    expect_lockstep(opt, /*use_soa_engine=*/false);
    expect_lockstep(opt, /*use_soa_engine=*/true);
  }
}

// ---------------------------------------------------------------------------
// Symmetry reduction: the quotient is a heuristic speedup and must not
// change any verdict, only the stored-state count.

TEST(ModelSymmetry, QuotientAgreesWithFullSpaceOnVerdicts) {
  for (ModelOptions opt : model_suite_configs()) {
    if (!opt.use_symmetry) continue;
    SCOPED_TRACE(opt.topology + " x " + opt.router);
    ModelOptions full = opt;
    full.use_symmetry = false;
    const ModelCheckResult with = check_model(opt);
    const ModelCheckResult without = check_model(full);
    EXPECT_EQ(with.complete, without.complete);
    EXPECT_EQ(with.all_ok(), without.all_ok());
    EXPECT_EQ(with.violated, without.violated);
    EXPECT_LE(with.states, without.states);
  }
}

// ---------------------------------------------------------------------------
// Negative control: strip the escape layer and ring traffic on a wrap
// torus wedges in the textbook hold-and-wait cycle. The model must convict
// bounded-progress with a deadlock witness, and that witness must replay
// to a real wedged WormholeNetwork (no mutation build needed: the escape
// layer is dropped through the public disable_escape knob).

ModelOptions ring_config() {
  ModelOptions opt;
  opt.topology = "torus:4";
  opt.router = "dor";
  opt.packets = 4;
  opt.allowed_pairs = {{0, 2}, {1, 3}, {2, 0}, {3, 1}};
  return opt;
}

TEST(ModelNegativeControl, EscapeLayerKeepsTheRingLive) {
  const ModelCheckResult healthy = check_model(ring_config());
  EXPECT_TRUE(healthy.complete);
  EXPECT_TRUE(healthy.all_ok()) << healthy.violated << ": " << healthy.detail;
}

TEST(ModelNegativeControl, DisableEscapeConvictsDeadlockAndReplays) {
  ModelOptions opt = ring_config();
  opt.disable_escape = true;
  const ModelCheckResult r = check_model(opt);
  ASSERT_TRUE(r.complete);
  EXPECT_FALSE(r.ok_progress);
  EXPECT_EQ(r.violated, "bounded-progress");
  EXPECT_EQ(r.progress_kind, "deadlock");
  ASSERT_TRUE(r.has_witness);
  EXPECT_EQ(r.witness.property, "bounded-progress");
  EXPECT_FALSE(r.witness.events.empty());
  // The witness JSON is the CI failure artifact; it must carry the full
  // configuration and the event script.
  const std::string json = r.witness.to_json();
  EXPECT_NE(json.find("\"topology\": \"torus:4\""), std::string::npos);
  EXPECT_NE(json.find("\"property\": \"bounded-progress\""), std::string::npos);
  EXPECT_NE(json.find("inject"), std::string::npos);

  for (const bool soa : {false, true}) {
    SCOPED_TRACE(soa ? "soa engine" : "reference engine");
    const ReplayResult replay = replay_witness(r.witness, soa);
    ASSERT_TRUE(replay.ran) << replay.detail;
    EXPECT_TRUE(replay.reproduced) << replay.detail;
  }
}

// A conviction found under the symmetry quotient still ships an exact
// full-space witness (the wrapper re-explores before building the path).
TEST(ModelNegativeControl, SymmetryConvictionStillYieldsExactWitness) {
  ModelOptions opt = ring_config();
  opt.disable_escape = true;
  opt.use_symmetry = true;
  const ModelCheckResult r = check_model(opt);
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.violated, "bounded-progress");
  ASSERT_TRUE(r.has_witness);
  EXPECT_NE(r.note.find("re-explored"), std::string::npos);
  const ReplayResult replay = replay_witness(r.witness);
  ASSERT_TRUE(replay.ran) << replay.detail;
  EXPECT_TRUE(replay.reproduced) << replay.detail;
}

// ---------------------------------------------------------------------------
// Encoding: canonical bytes round-trip the dedup-relevant state exactly.

TEST(ModelEncoding, EncodeDecodeRoundTripsMidFlight) {
  ModelOptions opt;
  opt.topology = "mesh:2x2";
  opt.router = "adaptive";
  opt.packets = 3;
  ProtoModel model(opt);
  ModelState s = model.initial();
  model.inject(s, 0, 3);
  model.step(s);
  model.inject(s, 3, 0);
  model.step(s);
  const std::string bytes = model.encode_state(s);
  const ModelState back = model.decode_state(bytes);
  EXPECT_EQ(model.encode_state(back), bytes);
  const ModelProjection a = model.project(s);
  const ModelProjection b = model.project(back);
  EXPECT_EQ(a.occupancy, b.occupancy);
  EXPECT_EQ(a.credits, b.credits);
  EXPECT_EQ(a.allocated, b.allocated);
  EXPECT_EQ(a.flits_in_flight, b.flits_in_flight);
}

TEST(ModelOptionsValidation, RejectsDegenerateBounds) {
  ModelOptions opt;
  opt.flits_per_packet = 1;  // a packet must have a head and a tail flit
  EXPECT_THROW(ProtoModel m(opt), std::invalid_argument);
  opt = ModelOptions{};
  opt.buffer_flits = 0;
  EXPECT_THROW(ProtoModel m(opt), std::invalid_argument);
  opt = ModelOptions{};
  opt.allowed_pairs = {{0, 99}};  // outside the fabric
  EXPECT_THROW(ProtoModel m(opt), std::invalid_argument);
}

}  // namespace
