#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "flow/csv.hpp"
#include "flow/record.hpp"
#include "flow/trace_gen.hpp"

namespace ddpm::flow {
namespace {

FlowRecord sample_record() {
  FlowRecord r;
  r.src = 0xC0A80002;
  r.dst = 0xC0A80001;
  r.bytes = 12345;
  r.packets = 17;
  r.first_ts = 1000;
  r.last_ts = 2000;
  r.proto = 6;
  r.attack = false;
  return r;
}

TEST(CsvParse, RoundTripsOneLine) {
  const FlowRecord r = sample_record();
  std::ostringstream os;
  write_csv(os, {r});
  std::istringstream is(os.str());
  std::vector<FlowRecord> parsed;
  const CsvStats stats =
      read_csv(is, [&](const FlowRecord& rec) { parsed.push_back(rec); });
  EXPECT_TRUE(stats.header_ok);
  EXPECT_EQ(stats.records, 1u);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], r);
}

TEST(CsvParse, AttackLabelRoundTrips) {
  FlowRecord r = sample_record();
  r.attack = true;
  std::ostringstream os;
  write_csv(os, {r});
  EXPECT_NE(os.str().find("ATTACK"), std::string::npos);
  std::istringstream is(os.str());
  std::vector<FlowRecord> parsed;
  read_csv(is, [&](const FlowRecord& rec) { parsed.push_back(rec); });
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0].attack);
  EXPECT_EQ(parsed[0], r);
}

TEST(CsvParse, EmptyFile) {
  std::istringstream is("");
  const CsvStats stats = read_csv(is, [](const FlowRecord&) { FAIL(); });
  EXPECT_FALSE(stats.header_ok);
  EXPECT_EQ(stats.lines, 0u);
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.malformed, 0u);
}

TEST(CsvParse, HeaderOnly) {
  std::istringstream is(std::string(kCsvHeader) + "\n");
  const CsvStats stats = read_csv(is, [](const FlowRecord&) { FAIL(); });
  EXPECT_TRUE(stats.header_ok);
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.malformed, 0u);
}

TEST(CsvParse, MalformedLinesAreCountedAndSkipped) {
  std::ostringstream os;
  os << kCsvHeader << "\n";
  os << "1,2,3,4,5,6,17,BENIGN\n";        // good
  os << "1,2,3,4,5\n";                    // truncated
  os << "a,b,c,d,e,f,g,h\n";              // garbage
  os << "1,2,3,4,5,6,999,BENIGN\n";       // proto overflow
  os << "1,2,3,4,5,6,17,\n";              // empty label
  os << "1,2,3,4,5,6,17,BENIGN,extra\n";  // extra field
  os << "9,8,7,6,5,4,3,DDoS\n";           // good (attack)
  std::istringstream is(os.str());
  std::vector<FlowRecord> parsed;
  const CsvStats stats =
      read_csv(is, [&](const FlowRecord& rec) { parsed.push_back(rec); });
  EXPECT_EQ(stats.lines, 7u);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.malformed, 5u);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_FALSE(parsed[0].attack);
  EXPECT_TRUE(parsed[1].attack);
}

TEST(CsvParse, BlankLinesAndCrlfTolerated) {
  std::istringstream is(std::string(kCsvHeader) +
                        "\r\n1,2,3,4,5,6,17,BENIGN\r\n\n");
  std::vector<FlowRecord> parsed;
  const CsvStats stats =
      read_csv(is, [&](const FlowRecord& rec) { parsed.push_back(rec); });
  EXPECT_TRUE(stats.header_ok);
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.malformed, 0u);
}

TEST(CsvParse, OutOfOrderTimestampsCounted) {
  std::ostringstream os;
  os << kCsvHeader << "\n";
  os << "1,2,3,4,500,600,17,BENIGN\n";
  os << "1,2,3,4,100,200,17,BENIGN\n";  // earlier than predecessor
  os << "1,2,3,4,700,800,17,BENIGN\n";
  std::istringstream is(os.str());
  const CsvStats stats = read_csv(is, [](const FlowRecord&) {});
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.out_of_order, 1u);
}

TEST(CsvParse, RejectsObviousGarbage) {
  FlowRecord r;
  EXPECT_FALSE(parse_csv_line("", r));
  EXPECT_FALSE(parse_csv_line(",,,,,,,", r));
  EXPECT_FALSE(parse_csv_line("1,2,3,4,5,6,17", r));
  EXPECT_FALSE(parse_csv_line("-1,2,3,4,5,6,17,BENIGN", r));
  EXPECT_FALSE(parse_csv_line("1.5,2,3,4,5,6,17,BENIGN", r));
  EXPECT_FALSE(parse_csv_line("99999999999,2,3,4,5,6,17,BENIGN", r));  // u32 overflow
  EXPECT_TRUE(parse_csv_line("1,2,3,4,5,6,17,BENIGN\r", r));
}

TEST(CsvParse, QuotedFieldsWithCommasAndEscapedQuotes) {
  FlowRecord r;
  EXPECT_TRUE(parse_csv_line("1,2,3,4,5,6,17,\"BENIGN\"", r));
  EXPECT_FALSE(r.attack);
  // A quoted label may contain commas without growing the field count.
  EXPECT_TRUE(parse_csv_line("1,2,3,4,5,6,17,\"DDoS, stage 2\"", r));
  EXPECT_TRUE(r.attack);
  // Quoting works on numeric fields too.
  EXPECT_TRUE(parse_csv_line("\"1\",\"2\",3,4,5,6,17,BENIGN", r));
  EXPECT_EQ(r.src, 1u);
  EXPECT_EQ(r.dst, 2u);
  // Doubled quotes escape a literal quote inside a quoted field.
  EXPECT_TRUE(parse_csv_line("1,2,3,4,5,6,17,\"say \"\"hi\"\"\"", r));
  EXPECT_TRUE(r.attack);
  // Unterminated quote, junk after the closing quote, quoted-empty label.
  EXPECT_FALSE(parse_csv_line("1,2,3,4,5,6,17,\"oops", r));
  EXPECT_FALSE(parse_csv_line("1,2,3,4,5,6,17,\"x\"y", r));
  EXPECT_FALSE(parse_csv_line("1,2,3,4,5,6,17,\"\"", r));
}

TEST(CsvParse, TrailingDelimiterTolerated) {
  FlowRecord r;
  EXPECT_TRUE(parse_csv_line("1,2,3,4,5,6,17,BENIGN,", r));
  EXPECT_FALSE(r.attack);
  EXPECT_TRUE(parse_csv_line("1,2,3,4,5,6,17,\"BENIGN\",", r));
  EXPECT_TRUE(parse_csv_line("1,2,3,4,5,6,17,BENIGN,\r", r));
  // But only ONE trailing delimiter — more than that is a ninth field.
  EXPECT_FALSE(parse_csv_line("1,2,3,4,5,6,17,BENIGN,,", r));
  EXPECT_FALSE(parse_csv_line("1,2,3,4,5,6,17,BENIGN,x", r));
}

TEST(CsvFuzz, EdgeCaseSerializationsRoundTrip) {
  TraceGenConfig config;
  config.seed = 99;
  config.duration = 30'000;
  config.attack_start = 5'000;
  config.attack_duration = 20'000;
  const std::vector<FlowRecord> records = TraceGenerator(config).generate();
  ASSERT_GT(records.size(), 200u);

  // Re-serialize by hand with deterministic edge-case decorations: CRLF
  // line endings, quoted label (and sometimes src) fields, and trailing
  // delimiters. The parser must see through every combination.
  std::uint64_t x = 0x2545F4914F6CDD1Dull;
  const auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  std::ostringstream os;
  os << kCsvHeader << "\r\n";
  for (const FlowRecord& r : records) {
    if (next() % 4 == 0) {
      os << '"' << r.src << '"';
    } else {
      os << r.src;
    }
    os << ',' << r.dst << ',' << r.bytes << ',' << r.packets << ','
       << r.first_ts << ',' << r.last_ts << ',' << unsigned(r.proto) << ',';
    const std::string_view label = r.attack ? "ATTACK" : kBenignLabel;
    switch (next() % 3) {
      case 0: os << label; break;
      case 1: os << '"' << label << '"'; break;
      case 2: os << label << ','; break;  // trailing delimiter
    }
    os << (next() % 2 ? "\r\n" : "\n");
  }
  std::istringstream is(os.str());
  std::vector<FlowRecord> parsed;
  const CsvStats stats =
      read_csv(is, [&](const FlowRecord& rec) { parsed.push_back(rec); });
  EXPECT_TRUE(stats.header_ok);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(parsed, records);
}

TEST(CsvFuzz, GenerateWriteParseRoundTripsByteIdentically) {
  TraceGenConfig config;
  config.seed = 77;
  config.duration = 50'000;
  config.attack_sources = 2'000;
  config.attack_start = 10'000;
  config.attack_duration = 20'000;
  const std::vector<FlowRecord> records = TraceGenerator(config).generate();
  ASSERT_GT(records.size(), 500u);

  std::ostringstream os;
  write_csv(os, records);
  std::istringstream is(os.str());
  std::vector<FlowRecord> parsed;
  const CsvStats stats =
      read_csv(is, [&](const FlowRecord& rec) { parsed.push_back(rec); });
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(stats.records, records.size());
  EXPECT_EQ(parsed, records);

  // And the re-serialization is byte-identical too.
  std::ostringstream os2;
  write_csv(os2, parsed);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(TraceGen, DeterministicAcrossInstances) {
  TraceGenConfig config;
  config.seed = 42;
  config.duration = 30'000;
  const std::vector<FlowRecord> a = TraceGenerator(config).generate();
  const std::vector<FlowRecord> b = TraceGenerator(config).generate();
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
}

TEST(TraceGen, TimestampsNonDecreasing) {
  TraceGenConfig config;
  config.seed = 7;
  config.duration = 50'000;
  config.attack_start = 10'000;
  config.attack_duration = 30'000;
  TraceGenerator gen(config);
  FlowRecord r;
  netsim::SimTime prev = 0;
  while (gen.next(r)) {
    EXPECT_GE(r.first_ts, prev);
    EXPECT_GE(r.last_ts, r.first_ts);
    EXPECT_LT(r.first_ts, config.duration);
    prev = r.first_ts;
  }
}

TEST(TraceGen, FloodEmitsDistinctSpoofedSources) {
  TraceGenConfig config;
  config.seed = 3;
  config.duration = 100'000;
  config.attack = AttackShape::kFlood;
  config.attack_sources = 5'000;
  config.attack_start = 0;
  config.attack_duration = 100'000;
  config.attack_rate = 0.2;  // ~20k attack flows > 5k sources: wraps the pool
  config.benign_rate = 0.001;
  TraceGenerator gen(config);
  FlowRecord r;
  std::set<std::uint32_t> attack_sources;
  std::uint64_t attack_flows = 0;
  while (gen.next(r)) {
    if (!r.attack) continue;
    ++attack_flows;
    attack_sources.insert(r.src);
    EXPECT_EQ(r.dst, config.victim);
    EXPECT_GE(r.first_ts, config.attack_start);
    EXPECT_LT(r.first_ts, config.attack_start + config.attack_duration);
  }
  ASSERT_GT(attack_flows, std::uint64_t(config.attack_sources));
  // The pool wrapped, so every one of the configured sources appeared.
  EXPECT_EQ(attack_sources.size(), std::size_t(config.attack_sources));
}

TEST(TraceGen, PulseLeavesGaps) {
  TraceGenConfig config;
  config.seed = 5;
  config.duration = 200'000;
  config.attack = AttackShape::kPulse;
  config.attack_start = 0;
  config.attack_duration = 200'000;
  config.pulse_period = 50'000;
  config.pulse_duty = 0.2;
  config.benign_rate = 0.0001;
  TraceGenerator gen(config);
  FlowRecord r;
  while (gen.next(r)) {
    if (!r.attack) continue;
    // Attack flows appear only in the first 20% of each period.
    const netsim::SimTime phase = r.first_ts % config.pulse_period;
    EXPECT_LT(phase, netsim::SimTime(0.2 * double(config.pulse_period)) + 1);
  }
}

TEST(TraceGen, ScrambleIsInjectiveOnSample) {
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < 100'000; ++i) {
    seen.insert(TraceGenerator::scramble(i));
  }
  EXPECT_EQ(seen.size(), 100'000u);
}

TEST(TraceGen, BenignOnlyHasNoAttackRecords) {
  TraceGenConfig config;
  config.seed = 11;
  config.duration = 50'000;
  config.attack = AttackShape::kNone;
  TraceGenerator gen(config);
  FlowRecord r;
  std::uint64_t n = 0;
  while (gen.next(r)) {
    EXPECT_FALSE(r.attack);
    ++n;
  }
  EXPECT_GT(n, 100u);
  EXPECT_EQ(n, gen.emitted());
}

TEST(FlowRecordLayout, StaysPacked) {
  static_assert(sizeof(FlowRecord) == 40);
  static_assert(alignof(FlowRecord) == 8);
}

}  // namespace
}  // namespace ddpm::flow
