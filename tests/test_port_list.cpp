// route::PortList edge cases: capacity boundary, the overflow DDPM_CHECK,
// and behavioral parity with the std::vector<Port> surface it replaced in
// Router::candidates (push_back/assign/erase_value/iteration/equality).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "routing/port_list.hpp"
#include "topology/topology.hpp"

namespace {

using ddpm::route::PortList;
using ddpm::topo::Port;

TEST(PortList, FillsToExactCapacity) {
  PortList list;
  for (std::size_t i = 0; i < PortList::kCapacity; ++i) {
    list.push_back(Port(i));
  }
  EXPECT_EQ(list.size(), PortList::kCapacity);
  EXPECT_FALSE(list.empty());
  for (std::size_t i = 0; i < PortList::kCapacity; ++i) {
    EXPECT_EQ(list[i], Port(i));
  }
}

TEST(PortListDeathTest, OverflowAbortsLoudly) {
  PortList list;
  for (std::size_t i = 0; i < PortList::kCapacity; ++i) {
    list.push_back(Port(0));
  }
  EXPECT_DEATH(list.push_back(Port(0)), "PortList overflow");
}

TEST(PortListDeathTest, AssignBeyondCapacityAborts) {
  PortList list;
  EXPECT_DEATH(list.assign(PortList::kCapacity + 1, Port(0)),
               "PortList overflow");
}

TEST(PortList, AssignMatchesVectorSemantics) {
  PortList list{Port(1), Port(2), Port(3)};
  list.assign(1, Port(7));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.front(), Port(7));
  list.assign(0, Port(9));
  EXPECT_TRUE(list.empty());
  // assign may grow as well as shrink, like vector::assign.
  list.assign(PortList::kCapacity, Port(4));
  EXPECT_EQ(list.size(), PortList::kCapacity);
  EXPECT_TRUE(std::all_of(list.begin(), list.end(),
                          [](Port p) { return p == Port(4); }));
}

TEST(PortList, EraseValuePreservesOrderOfSurvivors) {
  PortList list{Port(3), Port(1), Port(3), Port(2), Port(3)};
  list.erase_value(Port(3));
  EXPECT_EQ(list, (PortList{Port(1), Port(2)}));
  list.erase_value(Port(5));  // absent value: no-op
  EXPECT_EQ(list, (PortList{Port(1), Port(2)}));
  list.erase_value(Port(1));
  list.erase_value(Port(2));
  EXPECT_TRUE(list.empty());
  list.erase_value(Port(1));  // empty list: still a no-op
  EXPECT_TRUE(list.empty());
}

// The drop-in contract: any sequence of the shared operations leaves
// PortList and std::vector<Port> observably identical.
TEST(PortList, ParityWithVectorUnderSharedOperations) {
  PortList list;
  std::vector<Port> vec;
  const auto expect_same = [&] {
    ASSERT_EQ(list.size(), vec.size());
    EXPECT_TRUE(std::equal(list.begin(), list.end(), vec.begin()));
    EXPECT_EQ(list.empty(), vec.empty());
  };
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      const Port p = Port((i * 5 + round) % 6);
      list.push_back(p);
      vec.push_back(p);
    }
    expect_same();
    list.erase_value(Port(round));
    vec.erase(std::remove(vec.begin(), vec.end(), Port(round)), vec.end());
    expect_same();
  }
  EXPECT_EQ(list.front(), vec.front());
  list.assign(2, Port(9));
  vec.assign(2, Port(9));
  expect_same();
  list.clear();
  vec.clear();
  expect_same();
}

TEST(PortList, RangeForIterationAndConstIteration) {
  const PortList list{Port(4), Port(0), Port(2)};
  std::vector<Port> seen;
  for (const Port p : list) seen.push_back(p);
  EXPECT_EQ(seen, (std::vector<Port>{Port(4), Port(0), Port(2)}));
  EXPECT_EQ(list.end() - list.begin(), 3);
}

TEST(PortList, EqualityComparesLengthAndPrefix) {
  EXPECT_EQ(PortList{}, PortList{});
  EXPECT_EQ((PortList{Port(1), Port(2)}), (PortList{Port(1), Port(2)}));
  EXPECT_FALSE((PortList{Port(1), Port(2)}) == (PortList{Port(2), Port(1)}));
  EXPECT_FALSE((PortList{Port(1)}) == (PortList{Port(1), Port(1)}));
  // Stale bytes past size() must not affect equality.
  PortList a{Port(1), Port(2), Port(3)};
  a.erase_value(Port(3));
  EXPECT_EQ(a, (PortList{Port(1), Port(2)}));
}

TEST(PortList, MutationThroughIterators) {
  PortList list{Port(1), Port(2), Port(3)};
  for (Port& p : list) p = Port(p + 1);
  EXPECT_EQ(list, (PortList{Port(2), Port(3), Port(4)}));
}

}  // namespace
