#include "marking/ppm_fragment.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "marking/ppm.hpp"
#include "marking/ppm_reconstruct.hpp"
#include "marking/walk.hpp"
#include "routing/router.hpp"
#include "topology/mesh.hpp"

namespace ddpm::mark {
namespace {

using topo::Coord;

TEST(FragmentLayout, WordStructure) {
  const auto w = FragmentLayout::word(5);
  EXPECT_EQ(w >> FragmentLayout::kHashBits, 5u);
  EXPECT_EQ(w & ((1u << FragmentLayout::kHashBits) - 1u),
            FragmentLayout::h22(5));
  // Fragments reassemble the word.
  std::uint32_t re = 0;
  for (int o = 0; o < FragmentLayout::kFragments; ++o) {
    re |= std::uint32_t(FragmentLayout::fragment_of(w, o)) << (8 * o);
  }
  EXPECT_EQ(re, w);
}

TEST(FragmentLayout, SupportsSixteenBySixteenWhereFullEdgeCannot) {
  topo::Mesh big({16, 16});
  EXPECT_TRUE(FragmentLayout::supports(big));
  EXPECT_FALSE(PpmLayout::for_topology(PpmVariant::kFullEdge, big).fits);
  topo::Mesh too_big({32, 32});  // 1024 nodes, but diameter 62 > 31
  EXPECT_FALSE(FragmentLayout::supports(too_big));
  EXPECT_THROW(FragmentPpmScheme(too_big, 0.1, 1), std::invalid_argument);
}

TEST(FragmentLayout, HashSpreads) {
  int diff = 0;
  for (std::uint32_t i = 0; i < 512; ++i) {
    diff += (FragmentLayout::h22(i) != FragmentLayout::h22(i + 1));
  }
  EXPECT_EQ(diff, 512);
}

std::uint64_t converge_fragment(const topo::Topology& topo,
                                const route::Router& router,
                                FragmentPpmScheme& scheme,
                                FragmentPpmIdentifier& identifier,
                                topo::NodeId src, topo::NodeId victim,
                                std::uint64_t budget) {
  for (std::uint64_t n = 1; n <= budget; ++n) {
    WalkOptions options;
    options.seed = n * 2654435761u;
    options.record_path = false;
    const auto walk = walk_packet(topo, router, &scheme, src, victim, options);
    if (!walk.delivered()) continue;
    const auto c = identifier.observe(walk.packet, victim);
    if (std::find(c.begin(), c.end(), src) != c.end()) return n;
  }
  return 0;
}

TEST(FragmentPpm, ConvergesToTrueSourceOnStableRoute) {
  topo::Mesh m({8, 8});
  FragmentPpmScheme scheme(m, 0.15, 42);
  FragmentPpmIdentifier identifier(m);
  const auto router = route::make_router("dor", m);
  const auto used = converge_fragment(m, *router, scheme, identifier,
                                      m.id_of(Coord{0, 0}),
                                      m.id_of(Coord{7, 7}), 100000);
  EXPECT_GT(used, 0u) << "never converged";
}

TEST(FragmentPpm, NeedsMorePacketsThanFullEdge) {
  // The k-fragment penalty: k ln(kd) / ln(d) more packets in expectation.
  topo::Mesh m({8, 8});
  const auto router = route::make_router("dor", m);
  const auto src = m.id_of(Coord{0, 0});
  const auto victim = m.id_of(Coord{7, 7});

  double frag_total = 0, full_total = 0;
  int trials = 3;
  for (int t = 0; t < trials; ++t) {
    FragmentPpmScheme frag_scheme(m, 0.1, 100 + std::uint64_t(t));
    FragmentPpmIdentifier frag_id(m);
    frag_total += double(converge_fragment(m, *router, frag_scheme, frag_id,
                                           src, victim, 200000));
    PpmScheme full_scheme(m, PpmVariant::kFullEdge, 0.1,
                          100 + std::uint64_t(t));
    PpmIdentifier full_id(m, PpmVariant::kFullEdge);
    for (std::uint64_t n = 1; n <= 200000; ++n) {
      WalkOptions options;
      options.seed = n * 2654435761u;
      options.record_path = false;
      const auto walk =
          walk_packet(m, *router, &full_scheme, src, victim, options);
      const auto c = full_id.observe(walk.packet, victim);
      if (std::find(c.begin(), c.end(), src) != c.end()) {
        full_total += double(n);
        break;
      }
    }
  }
  EXPECT_GT(frag_total, full_total * 1.5);
}

TEST(FragmentPpm, WorksOnSixteenBySixteen) {
  // The whole reason the encoding exists: a network the naive layout
  // cannot serve at all.
  topo::Mesh m({16, 16});
  FragmentPpmScheme scheme(m, 0.2, 7);
  FragmentPpmIdentifier identifier(m);
  const auto router = route::make_router("dor", m);
  const auto used = converge_fragment(m, *router, scheme, identifier,
                                      m.id_of(Coord{10, 12}),
                                      m.id_of(Coord{2, 1}), 150000);
  EXPECT_GT(used, 0u);
}

TEST(FragmentPpm, HashVerificationPrunesGarbage) {
  // Feed random fragments: without a matching 22-bit hash no candidate
  // survives, so the identifier stays silent instead of hallucinating.
  topo::Mesh m({8, 8});
  FragmentPpmIdentifier identifier(m);
  netsim::Rng rng(3);
  pkt::Packet p;
  for (int i = 0; i < 2000; ++i) {
    std::uint16_t field = 0;
    field = pkt::write_unsigned(field, FragmentLayout::offset(),
                                std::uint16_t(rng.next_below(4)));
    field = pkt::write_unsigned(field, FragmentLayout::distance(),
                                std::uint16_t(rng.next_below(4)));
    field = pkt::write_unsigned(field, FragmentLayout::fragment(),
                                std::uint16_t(rng.next_below(256)));
    p.set_marking_field(field);
    const auto c = identifier.observe(p, 63);
    // Level-0 verification requires an exact word match against a
    // neighbor of the victim — random fragments essentially never pass.
    EXPECT_TRUE(c.empty() ||
                std::all_of(c.begin(), c.end(), [&](topo::NodeId a) {
                  return m.port_to(a, 63).has_value();
                }));
  }
}

TEST(FragmentPpm, ResetClears) {
  topo::Mesh m({8, 8});
  FragmentPpmIdentifier identifier(m);
  pkt::Packet p;
  p.set_marking_field(0x0123);
  identifier.observe(p, 63);
  EXPECT_GT(identifier.unique_fragments(), 0u);
  identifier.reset();
  EXPECT_EQ(identifier.unique_fragments(), 0u);
}

}  // namespace
}  // namespace ddpm::mark
