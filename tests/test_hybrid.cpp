#include "hybrid/hybrid.hpp"

#include <gtest/gtest.h>

#include "marking/walk.hpp"
#include "routing/router.hpp"

namespace ddpm::hybrid {
namespace {

TEST(Hybrid, HostAddressing) {
  HybridTopology topo(4, 8);
  EXPECT_EQ(topo.num_hosts(), 128u);
  for (HostId h = 0; h < topo.num_hosts(); h += 13) {
    EXPECT_EQ(topo.host_of(topo.switch_of(h), topo.local_of(h)), h);
    EXPECT_LT(topo.local_of(h), 8);
    EXPECT_LT(topo.switch_of(h), topo.mesh().num_nodes());
  }
}

TEST(Hybrid, CodecBudget) {
  // 32x32 mesh (12 vector bits) x 16 hosts (4 bits) = 16384 hosts, 16 bits.
  EXPECT_EQ(HierarchicalDdpmCodec::required_bits(HybridTopology(32, 16)), 16);
  EXPECT_TRUE(HierarchicalDdpmCodec::fits(HybridTopology(32, 16)));
  EXPECT_FALSE(HierarchicalDdpmCodec::fits(HybridTopology(32, 32)));
  EXPECT_FALSE(HierarchicalDdpmCodec::fits(HybridTopology(64, 16)));
  EXPECT_THROW(HierarchicalDdpmCodec codec(HybridTopology(64, 16)),
               std::invalid_argument);
}

TEST(Hybrid, CodecRoundTrip) {
  HybridTopology topo(8, 16);
  HierarchicalDdpmCodec codec(topo);
  for (int local = 0; local < 16; local += 3) {
    for (int x = -7; x <= 7; x += 2) {
      for (int y = -7; y <= 7; y += 3) {
        const auto field = codec.encode(local, topo::Coord{x, y});
        EXPECT_EQ(codec.decode_local(field), local);
        EXPECT_EQ(codec.decode_vector(field), (topo::Coord{x, y}));
      }
    }
  }
}

TEST(Hybrid, OnePacketIdentifiesHostAcrossAdaptiveRoutes) {
  HybridTopology topo(8, 8);
  HierarchicalDdpmScheme scheme(topo);
  HierarchicalDdpmIdentifier identifier(topo);
  const auto router = route::make_router("adaptive", topo.mesh());
  netsim::Rng rng(17);
  for (int trial = 0; trial < 500; ++trial) {
    const auto src_host = HostId(rng.next_below(topo.num_hosts()));
    const auto dst_host = HostId(rng.next_below(topo.num_hosts()));
    const auto src_sw = topo.switch_of(src_host);
    const auto dst_sw = topo.switch_of(dst_host);
    pkt::Packet p;
    p.set_marking_field(0xffff);  // attacker seed: erased at injection
    scheme.mark_injection(p, src_sw, topo.local_of(src_host));
    if (src_sw != dst_sw) {
      // Walk the mesh between the two switches under adaptive routing.
      mark::WalkOptions options;
      options.seed = rng.next_u64();
      const auto walk = mark::walk_packet(topo.mesh(), *router, nullptr,
                                          src_sw, dst_sw, options);
      ASSERT_TRUE(walk.delivered());
      for (std::size_t i = 1; i < walk.path.size(); ++i) {
        scheme.mark_forward(p, walk.path[i - 1], walk.path[i]);
      }
    }
    const auto named = identifier.identify(dst_sw, p.marking_field());
    ASSERT_TRUE(named.has_value());
    EXPECT_EQ(*named, src_host);
  }
}

TEST(Hybrid, SameSwitchHostsDistinguishedByLocalBits) {
  // Two hosts on one bus are indistinguishable to plain DDPM (same switch
  // coordinates); the local bits separate them.
  HybridTopology topo(4, 8);
  HierarchicalDdpmScheme scheme(topo);
  HierarchicalDdpmIdentifier identifier(topo);
  pkt::Packet a, b;
  scheme.mark_injection(a, 5, 2);
  scheme.mark_injection(b, 5, 6);
  EXPECT_NE(a.marking_field(), b.marking_field());
  EXPECT_EQ(*identifier.identify(5, a.marking_field()), topo.host_of(5, 2));
  EXPECT_EQ(*identifier.identify(5, b.marking_field()), topo.host_of(5, 6));
}

TEST(Hybrid, CorruptLocalBitsDetected) {
  HybridTopology topo(4, 5);  // 3 local bits, values 5..7 invalid
  HierarchicalDdpmIdentifier identifier(topo);
  HierarchicalDdpmCodec codec(topo);
  const auto field = codec.encode(7, topo::Coord{0, 0});
  EXPECT_FALSE(identifier.identify(3, field).has_value());
}

}  // namespace
}  // namespace ddpm::hybrid
