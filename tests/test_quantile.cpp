#include "netsim/quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "netsim/rng.hpp"

namespace ddpm::netsim {
namespace {

double exact_quantile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const auto rank = std::size_t(p * double(samples.size() - 1));
  return samples[rank];
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile q(0.5);
  q.add(3);
  EXPECT_EQ(q.value(), 3);
  q.add(1);
  q.add(2);
  EXPECT_EQ(q.value(), 2);  // median of {1,2,3}
}

TEST(P2Quantile, MedianOfUniform) {
  P2Quantile q(0.5);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) q.add(rng.next_double());
  EXPECT_NEAR(q.value(), 0.5, 0.01);
}

TEST(P2Quantile, TailOfUniform) {
  P2Quantile q99(0.99);
  P2Quantile q10(0.10);
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double() * 100.0;
    q99.add(x);
    q10.add(x);
  }
  EXPECT_NEAR(q99.value(), 99.0, 1.0);
  EXPECT_NEAR(q10.value(), 10.0, 1.0);
}

TEST(P2Quantile, SkewedDistribution) {
  // Exponential: p-quantile = -ln(1-p)/rate.
  P2Quantile q90(0.90);
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.next_exponential(0.5);
    q90.add(x);
    samples.push_back(x);
  }
  const double exact = exact_quantile(samples, 0.90);
  EXPECT_NEAR(q90.value(), exact, exact * 0.05);
}

TEST(P2Quantile, MonotoneInP) {
  P2Quantile q25(0.25), q50(0.5), q75(0.75);
  Rng rng(4);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.next_normal();
    q25.add(x);
    q50.add(x);
    q75.add(x);
  }
  EXPECT_LT(q25.value(), q50.value());
  EXPECT_LT(q50.value(), q75.value());
  EXPECT_NEAR(q50.value(), 0.0, 0.03);
}

TEST(P2Quantile, ConstantStream) {
  P2Quantile q(0.99);
  for (int i = 0; i < 1000; ++i) q.add(7.0);
  EXPECT_DOUBLE_EQ(q.value(), 7.0);
}

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.value(), 0.0);
  EXPECT_EQ(q.count(), 0u);
}

TEST(P2Quantile, SingleSampleIsThatSample) {
  // Every target quantile of a one-sample stream is the sample itself.
  for (double p : {0.01, 0.5, 0.99}) {
    P2Quantile q(p);
    q.add(-3.25);
    EXPECT_EQ(q.count(), 1u);
    EXPECT_DOUBLE_EQ(q.value(), -3.25);
  }
}

TEST(P2Quantile, TwoSamplesBracketTheEstimate) {
  P2Quantile lo(0.1), hi(0.9);
  for (auto* q : {&lo, &hi}) {
    q->add(10.0);
    q->add(20.0);
  }
  EXPECT_DOUBLE_EQ(lo.value(), 10.0);
  EXPECT_DOUBLE_EQ(hi.value(), 20.0);
}

}  // namespace
}  // namespace ddpm::netsim
