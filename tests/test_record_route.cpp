#include "marking/record_route.hpp"

#include <gtest/gtest.h>

#include "marking/walk.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"
#include "topology/mesh.hpp"

namespace ddpm::mark {
namespace {

using topo::Coord;

TEST(RecordRoute, FirstEntryIsTheSource) {
  const auto topo = topo::make_topology("mesh:8x8");
  const auto router = route::make_router("adaptive", *topo);
  RecordRouteScheme scheme;
  RecordRouteIdentifier identifier(*topo);
  netsim::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = topo::NodeId(rng.next_below(topo->num_nodes()));
    auto d = topo::NodeId(rng.next_below(topo->num_nodes()));
    if (d == s) d = (d + 1) % topo->num_nodes();
    WalkOptions options;
    options.seed = rng.next_u64();
    options.record_path = false;
    const auto walk = walk_packet(*topo, *router, &scheme, s, d, options);
    ASSERT_TRUE(walk.delivered());
    const auto named = identifier.observe(walk.packet, d);
    ASSERT_EQ(named.size(), 1u);
    EXPECT_EQ(named.front(), s);
  }
}

TEST(RecordRoute, OptionCapsAtNineEntries) {
  // RFC 791: at most 9 recorded addresses. On a 14-hop path the tail of
  // the route is lost; the source (recorded first) is not.
  topo::Mesh m({8, 8});
  const auto router = route::make_router("dor", m);
  RecordRouteScheme scheme;
  const auto walk = walk_packet(m, *router, &scheme, 0, 63);
  ASSERT_TRUE(walk.delivered());
  EXPECT_EQ(walk.hops, 14);
  EXPECT_EQ(walk.packet.route_option.size(), RecordRouteScheme::kMaxEntries);
  EXPECT_EQ(walk.packet.route_option.front(), 0u);
}

TEST(RecordRoute, WireBytesGrowPerHop) {
  topo::Mesh m({8, 8});
  const auto router = route::make_router("dor", m);
  RecordRouteScheme scheme;
  const auto walk = walk_packet(m, *router, &scheme, 0, 7);  // 7 hops
  ASSERT_TRUE(walk.delivered());
  // 7 recorded switches: 28 extra wire bytes over the bare packet.
  EXPECT_EQ(walk.packet.route_option.size(), 7u);
  EXPECT_EQ(walk.packet.wire_bytes(),
            std::uint32_t(pkt::IpHeader::kWireSize) + 4 * 7);
}

TEST(RecordRoute, InjectionDiscardsSeededOption) {
  topo::Mesh m({4, 4});
  const auto router = route::make_router("dor", m);
  RecordRouteScheme scheme;
  RecordRouteIdentifier identifier(m);
  pkt::Packet seeded;
  seeded.true_source = 5;
  seeded.dest_node = 10;
  seeded.header.set_ttl(64);
  seeded.route_option = {9, 9, 9};  // attacker frame-up attempt
  scheme.on_injection(seeded, 5);
  EXPECT_TRUE(seeded.route_option.empty());
}

TEST(RecordRoute, EmptyOptionYieldsNoCandidate) {
  topo::Mesh m({4, 4});
  RecordRouteIdentifier identifier(m);
  pkt::Packet p;
  EXPECT_TRUE(identifier.observe(p, 3).empty());
  p.route_option = {99};  // out of range for a 16-node mesh
  EXPECT_TRUE(identifier.observe(p, 3).empty());
}

}  // namespace
}  // namespace ddpm::mark
