#include "detect/detector.hpp"

#include <gtest/gtest.h>

#include "detect/filter.hpp"

namespace ddpm::detect {
namespace {

pkt::Packet make_packet(pkt::Ipv4Address src,
                        pkt::IpProto proto = pkt::IpProto::kUdp) {
  pkt::Packet p;
  p.header = pkt::IpHeader(src, 42, proto, 64);
  return p;
}

TEST(RateDetector, SilentOnTrickle) {
  RateThresholdDetector detector(0.1, 1000);
  const auto p = make_packet(1);
  for (netsim::SimTime t = 0; t < 100000; t += 100) {  // rate 0.01
    detector.observe(p, t);
  }
  EXPECT_FALSE(detector.alarmed());
}

TEST(RateDetector, AlarmsOnFlood) {
  RateThresholdDetector detector(0.1, 1000);
  const auto p = make_packet(1);
  for (netsim::SimTime t = 0; t < 5000; ++t) {  // rate 1.0
    detector.observe(p, t);
  }
  EXPECT_TRUE(detector.alarmed());
  ASSERT_TRUE(detector.alarm_time().has_value());
  EXPECT_LT(*detector.alarm_time(), 5000u);
}

TEST(RateDetector, AlarmTimeLatches) {
  RateThresholdDetector detector(0.01, 100);
  const auto p = make_packet(1);
  for (netsim::SimTime t = 0; t < 1000; ++t) detector.observe(p, t);
  const auto first = detector.alarm_time();
  ASSERT_TRUE(first.has_value());
  for (netsim::SimTime t = 1000; t < 2000; ++t) detector.observe(p, t);
  EXPECT_EQ(detector.alarm_time(), first);
  detector.reset();
  EXPECT_FALSE(detector.alarmed());
}

TEST(EntropyDetector, SpoofedFloodRaisesEntropy) {
  // Benign: 4 distinct sources (2 bits). Spoofed flood: hundreds of random
  // sources pushes entropy above the benign band.
  EntropyDetector detector(256, 0.5, 4.0);
  netsim::SimTime t = 0;
  for (int i = 0; i < 1000; ++i) {
    detector.observe(make_packet(pkt::Ipv4Address(i % 4)), ++t);
  }
  EXPECT_FALSE(detector.alarmed()) << detector.current_entropy();
  for (int i = 0; i < 1000; ++i) {
    detector.observe(make_packet(pkt::Ipv4Address(0x10000 + i)), ++t);
  }
  EXPECT_TRUE(detector.alarmed());
}

TEST(EntropyDetector, SingleSourceFloodDropsEntropy) {
  EntropyDetector detector(256, 0.5, 4.0);
  netsim::SimTime t = 0;
  for (int i = 0; i < 1000; ++i) {
    detector.observe(make_packet(pkt::Ipv4Address(i % 4)), ++t);
  }
  EXPECT_FALSE(detector.alarmed());
  for (int i = 0; i < 1000; ++i) {
    detector.observe(make_packet(7), ++t);
  }
  EXPECT_TRUE(detector.alarmed());
}

TEST(EntropyDetector, NeedsFullWindow) {
  EntropyDetector detector(1000, 0.5, 4.0);
  netsim::SimTime t = 0;
  for (int i = 0; i < 500; ++i) {
    detector.observe(make_packet(pkt::Ipv4Address(i)), ++t);
  }
  EXPECT_FALSE(detector.alarmed());  // window not yet full
}

TEST(EntropyDetector, WindowIsCappedAgainstStateExhaustion) {
  // A spoofed flood makes every packet a fresh source; without the cap the
  // per-source map would grow with the attacker's address pool. The window
  // clamps to kMaxWindow, bounding distinct map entries to that many.
  EntropyDetector detector(std::size_t(1) << 30, 0.5, 40.0);
  EXPECT_EQ(detector.window(), EntropyDetector::kMaxWindow);
  netsim::SimTime t = 0;
  // Every packet a fresh source, running past the capped window (each
  // packet past the fill recomputes O(window) entropy — keep the overrun
  // tiny).
  const int n = int(EntropyDetector::kMaxWindow) + 64;
  for (int i = 0; i < n; ++i) {
    detector.observe(make_packet(pkt::Ipv4Address(i)), ++t);
  }
  // Memory tracks the window, not the total distinct sources observed.
  EXPECT_LE(detector.memory_bytes(),
            EntropyDetector::kMaxWindow * 32)
      << "per-source state exceeded the capped window";
}

TEST(SynDetector, IgnoresUdp) {
  SynHalfOpenDetector detector(10, 1000);
  netsim::SimTime t = 0;
  for (int i = 0; i < 100; ++i) {
    detector.observe(make_packet(1, pkt::IpProto::kUdp), ++t);
  }
  EXPECT_FALSE(detector.alarmed());
  EXPECT_EQ(detector.half_open(t), 0u);
}

TEST(SynDetector, AlarmsWhenHalfOpenExceedsLimit) {
  SynHalfOpenDetector detector(10, 100000);
  netsim::SimTime t = 0;
  for (int i = 0; i < 11; ++i) {
    detector.observe(make_packet(1, pkt::IpProto::kTcp), ++t);
  }
  EXPECT_TRUE(detector.alarmed());
}

TEST(SynDetector, TimeoutsDrainHalfOpenSlots) {
  SynHalfOpenDetector detector(10, 50);
  netsim::SimTime t = 0;
  for (int i = 0; i < 8; ++i) {
    detector.observe(make_packet(1, pkt::IpProto::kTcp), t += 10);
  }
  // Each SYN expires 50 ticks after it arrived; at t+60 all are gone.
  EXPECT_EQ(detector.half_open(t + 60), 0u);
  EXPECT_FALSE(detector.alarmed());
}

TEST(Filter, SourceNodeRules) {
  BlockingFilter filter;
  filter.block_source_node(5);
  EXPECT_TRUE(filter.blocks_injection(5));
  EXPECT_FALSE(filter.blocks_injection(6));
  EXPECT_EQ(filter.rule_count(), 1u);
}

TEST(Filter, SignatureRules) {
  BlockingFilter filter;
  filter.block_signature(0xbeef);
  pkt::Packet hit = make_packet(1);
  hit.set_marking_field(0xbeef);
  pkt::Packet miss = make_packet(1);
  miss.set_marking_field(0xbee0);
  EXPECT_TRUE(filter.blocks_delivery(hit));
  EXPECT_FALSE(filter.blocks_delivery(miss));
}

TEST(Filter, AddressRulesDefeatedBySpoofing) {
  BlockingFilter filter;
  filter.block_address(100);
  pkt::Packet honest = make_packet(100);
  EXPECT_TRUE(filter.blocks_delivery(honest));
  pkt::Packet spoofed = make_packet(100);
  spoofed.header.set_source(101);  // attacker rotates addresses
  EXPECT_FALSE(filter.blocks_delivery(spoofed));
}

TEST(Filter, ClearRemovesEverything) {
  BlockingFilter filter;
  filter.block_source_node(1);
  filter.block_signature(2);
  filter.block_address(3);
  EXPECT_EQ(filter.rule_count(), 3u);
  filter.clear();
  EXPECT_EQ(filter.rule_count(), 0u);
  EXPECT_FALSE(filter.blocks_injection(1));
}

}  // namespace
}  // namespace ddpm::detect
