#include "routing/adaptive.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "marking/walk.hpp"
#include "routing/oracle.hpp"
#include "topology/factory.hpp"
#include "topology/graph.hpp"
#include "topology/mesh.hpp"

namespace ddpm::route {
namespace {

using mark::walk_packet;
using mark::WalkOutcome;
using topo::Coord;

TEST(Adaptive, CandidatesAreExactlyProductivePorts) {
  topo::Mesh m({4, 4});
  AdaptiveRouter router(m);
  const auto cand = router.candidates(m.id_of(Coord{1, 1}),
                                      m.id_of(Coord{3, 3}), kLocalPort);
  EXPECT_EQ(cand.size(), 2u);  // east + south
  for (Port p : cand) {
    const auto next = m.neighbor(m.id_of(Coord{1, 1}), p);
    ASSERT_TRUE(next.has_value());
    EXPECT_LT(m.min_hops(*next, m.id_of(Coord{3, 3})),
              m.min_hops(m.id_of(Coord{1, 1}), m.id_of(Coord{3, 3})));
  }
}

TEST(Adaptive, MinimalDeliveryEverywhere) {
  for (const char* spec : {"mesh:4x4", "torus:4x4", "hypercube:4"}) {
    const auto topo = topo::make_topology(spec);
    AdaptiveRouter router(*topo);
    for (topo::NodeId s = 0; s < topo->num_nodes(); s += 3) {
      for (topo::NodeId d = 0; d < topo->num_nodes(); ++d) {
        if (s == d) continue;
        mark::WalkOptions options;
        options.seed = s * 1000 + d;
        const auto walk = walk_packet(*topo, router, nullptr, s, d, options);
        ASSERT_TRUE(walk.delivered()) << spec;
        EXPECT_EQ(walk.hops, topo->min_hops(s, d)) << spec;
      }
    }
  }
}

TEST(Adaptive, PathVariesWithSeedUnlikeDeterministic) {
  // The property that defeats path-recording traceback (paper §4): same
  // (src, dst), different paths.
  topo::Mesh m({6, 6});
  AdaptiveRouter router(m);
  const auto s = m.id_of(Coord{0, 0});
  const auto d = m.id_of(Coord{5, 5});
  std::set<std::vector<topo::NodeId>> paths;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    mark::WalkOptions options;
    options.seed = seed;
    paths.insert(walk_packet(m, router, nullptr, s, d, options).path);
  }
  EXPECT_GT(paths.size(), 5u);
}

TEST(Adaptive, CongestionAwareSelection) {
  // With one productive port congested, the router must choose the other.
  topo::Mesh m({4, 4});
  AdaptiveRouter router(m);

  class FakeCongestion final : public LinkStateView {
   public:
    explicit FakeCongestion(const topo::Topology& topo) : topo_(topo) {}
    bool link_usable(topo::NodeId node, Port port) const override {
      return topo_.neighbor(node, port).has_value();
    }
    double congestion(topo::NodeId, Port port) const override {
      return port == 1 ? 100.0 : 0.0;  // east port congested
    }
   private:
    const topo::Topology& topo_;
  } links(m);

  netsim::Rng rng(1);
  // From (1,1) to (3,3): east congested -> must pick south.
  const auto port = router.select_output(m.id_of(Coord{1, 1}),
                                         m.id_of(Coord{3, 3}), kLocalPort,
                                         links, rng);
  ASSERT_TRUE(port.has_value());
  EXPECT_EQ(*port, 3);  // dim-1 plus (south)
}

TEST(Adaptive, MinimalVariantBlockedWhenAllProductiveFailed) {
  topo::Mesh m({4, 4});
  AdaptiveRouter router(m);
  topo::LinkFailureSet failures;
  const auto s = m.id_of(Coord{0, 0});
  failures.fail(s, m.id_of(Coord{1, 0}));
  failures.fail(s, m.id_of(Coord{0, 1}));
  mark::WalkOptions options;
  options.failures = &failures;
  const auto walk =
      walk_packet(m, router, nullptr, s, m.id_of(Coord{3, 3}), options);
  EXPECT_EQ(walk.outcome, WalkOutcome::kBlocked);
}

TEST(Adaptive, MisroutingVariantEscapesTheSameBlock) {
  topo::Mesh m({4, 4});
  MisroutingAdaptiveRouter router(m);
  topo::LinkFailureSet failures;
  const auto s = m.id_of(Coord{1, 1});
  // Fail both productive links toward (3,3).
  failures.fail(s, m.id_of(Coord{2, 1}));
  failures.fail(s, m.id_of(Coord{1, 2}));
  mark::WalkOptions options;
  options.failures = &failures;
  options.seed = 7;
  const auto walk =
      walk_packet(m, router, nullptr, s, m.id_of(Coord{3, 3}), options);
  EXPECT_TRUE(walk.delivered());
  EXPECT_GT(walk.hops, m.min_hops(s, m.id_of(Coord{3, 3})));  // non-minimal
}

TEST(Adaptive, MisrouteFallbackExcludesBacktrack) {
  topo::Mesh m({4, 4});
  MisroutingAdaptiveRouter router(m);
  const auto cur = m.id_of(Coord{1, 1});
  const auto dst = m.id_of(Coord{3, 1});
  // Arrived from the west; fallback may contain north/south ports and the
  // west port is excluded (180-degree reversal).
  const auto fb = router.fallback_candidates(cur, dst, 0);
  EXPECT_EQ(std::find(fb.begin(), fb.end(), 0), fb.end());
  EXPECT_FALSE(fb.empty());
}

TEST(Oracle, MatchesBfsUnderFailures) {
  topo::Mesh m({4, 4});
  OracleRouter router(m);
  topo::LinkFailureSet failures;
  failures.fail(m.id_of(Coord{1, 0}), m.id_of(Coord{2, 0}));
  failures.fail(m.id_of(Coord{1, 1}), m.id_of(Coord{2, 1}));
  const auto s = m.id_of(Coord{0, 0});
  const auto d = m.id_of(Coord{3, 0});
  mark::WalkOptions options;
  options.failures = &failures;
  const auto walk = walk_packet(m, router, nullptr, s, d, options);
  ASSERT_TRUE(walk.delivered());
  EXPECT_EQ(walk.hops, topo::hop_distance(m, s, d, &failures));
}

TEST(Oracle, BlockedOnlyWhenDisconnected) {
  topo::Mesh m({3, 3});
  OracleRouter router(m);
  topo::LinkFailureSet failures;
  const auto corner = m.id_of(Coord{0, 0});
  failures.fail(corner, m.id_of(Coord{1, 0}));
  failures.fail(corner, m.id_of(Coord{0, 1}));
  mark::WalkOptions options;
  options.failures = &failures;
  EXPECT_EQ(walk_packet(m, router, nullptr, corner, m.id_of(Coord{2, 2}),
                        options)
                .outcome,
            WalkOutcome::kBlocked);
}

TEST(RouterFactory, BuildsEveryKnownRouter) {
  topo::Mesh m({4, 4});
  for (const char* name : {"dor", "xy", "ecube", "west-first", "north-last",
                           "negative-first", "adaptive", "adaptive-misroute",
                           "oracle"}) {
    const auto router = make_router(name, m);
    ASSERT_NE(router, nullptr) << name;
  }
  EXPECT_THROW(make_router("bogus", m), std::invalid_argument);
}

}  // namespace
}  // namespace ddpm::route
