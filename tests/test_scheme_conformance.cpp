// Cross-scheme conformance: behavioral contracts every MarkingScheme must
// honor, checked over the full scheme x topology matrix.
#include <gtest/gtest.h>

#include <tuple>

#include "marking/factory.hpp"
#include "marking/walk.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"

namespace ddpm::mark {
namespace {

using Param = std::tuple<const char* /*scheme*/, const char* /*topology*/>;

class SchemeConformance : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    topo_ = topo::make_topology(std::get<1>(GetParam()));
    scheme_ = make_scheme(std::get<0>(GetParam()), *topo_, 0.1, 77);
    ASSERT_NE(scheme_, nullptr);
  }
  std::unique_ptr<topo::Topology> topo_;
  std::unique_ptr<MarkingScheme> scheme_;
};

TEST_P(SchemeConformance, TouchesOnlyTheMarkingField) {
  // Marking must never alter addresses, protocol, TTL, payload, or the
  // evaluation ground truth — only the identification field.
  netsim::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    pkt::Packet p;
    p.header = pkt::IpHeader(0x0a000001, 0x0a000002, pkt::IpProto::kUdp, 99);
    p.header.set_ttl(37);
    p.true_source = 3;
    p.dest_node = 9;
    p.payload_bytes = 99;
    p.set_marking_field(std::uint16_t(rng.next_u64()));
    const auto a = topo::NodeId(rng.next_below(topo_->num_nodes()));
    const auto neighbors = topo_->neighbors(a);
    const auto b = neighbors[rng.next_below(neighbors.size())];
    scheme_->on_injection(p, a);
    scheme_->on_forward(p, a, b);
    EXPECT_EQ(p.header.source(), 0x0a000001u);
    EXPECT_EQ(p.header.destination(), 0x0a000002u);
    EXPECT_EQ(p.header.ttl(), 37);
    EXPECT_EQ(p.header.protocol(), pkt::IpProto::kUdp);
    EXPECT_EQ(p.true_source, 3u);
    EXPECT_EQ(p.dest_node, 9u);
    EXPECT_EQ(p.payload_bytes, 99u);
  }
}

TEST_P(SchemeConformance, NeverThrowsOnHostileFields) {
  netsim::Rng rng(2);
  pkt::Packet p;
  for (int trial = 0; trial < 2000; ++trial) {
    p.set_marking_field(std::uint16_t(rng.next_u64()));
    p.header.set_ttl(std::uint8_t(1 + rng.next_below(255)));
    const auto a = topo::NodeId(rng.next_below(topo_->num_nodes()));
    const auto neighbors = topo_->neighbors(a);
    const auto b = neighbors[rng.next_below(neighbors.size())];
    EXPECT_NO_THROW(scheme_->on_forward(p, a, b));
    EXPECT_NO_THROW(scheme_->on_injection(p, a));
  }
}

TEST_P(SchemeConformance, DeterministicGivenSameSeedAndInputs) {
  const auto scheme_b = make_scheme(std::get<0>(GetParam()), *topo_, 0.1, 77);
  const auto router = route::make_router("dor", *topo_);
  for (topo::NodeId s = 0; s < topo_->num_nodes(); s += 7) {
    const topo::NodeId d = (s + topo_->num_nodes() / 2) % topo_->num_nodes();
    if (s == d) continue;
    WalkOptions options;
    options.seed = 5;
    options.record_path = false;
    const auto w1 = walk_packet(*topo_, *router, scheme_.get(), s, d, options);
    const auto w2 = walk_packet(*topo_, *router, scheme_b.get(), s, d, options);
    ASSERT_TRUE(w1.delivered());
    EXPECT_EQ(w1.packet.marking_field(), w2.packet.marking_field());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchemeConformance,
    ::testing::Combine(::testing::Values("ddpm", "dpm", "ppm-full", "ppm-xor",
                                         "ppm-bitdiff", "ppm-fragment"),
                       ::testing::Values("mesh:8x8", "torus:8x8",
                                         "hypercube:6")));

TEST(SchemeFactory, NoneIsNull) {
  const auto topo = topo::make_topology("mesh:4x4");
  EXPECT_EQ(make_scheme("none", *topo), nullptr);
  EXPECT_THROW(make_scheme("bogus", *topo), std::invalid_argument);
}

}  // namespace
}  // namespace ddpm::mark
