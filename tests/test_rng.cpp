#include "netsim/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ddpm::netsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(double(c), double(kSamples) / kBuckets,
                0.05 * kSamples / kBuckets);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(double(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, ExponentialHasExpectedMean) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_exponential(0.5);
  EXPECT_NEAR(sum / kSamples, 2.0, 0.05);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng rng(31);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kSamples, 1.0, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ddpm::netsim
