#include "netsim/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ddpm::netsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(double(c), double(kSamples) / kBuckets,
                0.05 * kSamples / kBuckets);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(double(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, ExponentialHasExpectedMean) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_exponential(0.5);
  EXPECT_NEAR(sum / kSamples, 2.0, 0.05);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng rng(31);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kSamples, 1.0, 0.03);
}

TEST(Rng, JumpChangesStateDeterministically) {
  Rng a(37), b(37);
  a.jump();
  b.jump();
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, JumpStreamAdvancesParentPastChild) {
  // jump_stream() hands out the *current* stream and leaves the parent
  // 2^128 steps ahead, so dealing streams in a loop yields disjoint ones.
  Rng parent(41);
  Rng here = parent;    // the stream jump_stream() should hand out
  Rng jumped = parent;  // where the parent should land
  jumped.jump();
  Rng child = parent.jump_stream();
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(child.next_u64(), here.next_u64());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(parent.next_u64(), jumped.next_u64());
  }
}

TEST(Rng, JumpedStreamsShareNoOutputs) {
  // Streams dealt by jump() are 2^128 steps apart; their outputs must be
  // disjoint over any window we can afford to check. Collect the first 4k
  // 64-bit outputs of the base stream and of three successively jumped
  // streams and require zero overlap (a collision among 16k draws from a
  // 2^64 space is astronomically unlikely unless the streams overlap).
  Rng base(43);
  std::set<std::uint64_t> seen;
  Rng s0 = base.jump_stream();
  Rng s1 = base.jump_stream();
  Rng s2 = base.jump_stream();
  Rng s3 = base.jump_stream();
  for (Rng* s : {&s0, &s1, &s2, &s3}) {
    for (int i = 0; i < 4096; ++i) {
      const auto v = s->next_u64();
      EXPECT_TRUE(seen.insert(v).second)
          << "output shared between jumped streams";
    }
  }
  EXPECT_EQ(seen.size(), 4u * 4096u);
}

TEST(Rng, LongJumpIsDisjointFromJumpedStreams) {
  // long_jump() is 2^192 steps — far beyond any ladder of 2^128 jumps we
  // could take, so replication-level streams never collide with
  // entity-level jumped streams.
  Rng a(47);
  Rng b = a;
  b.long_jump();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4096; ++i) seen.insert(a.next_u64());
  for (int i = 0; i < 4096; ++i) {
    EXPECT_TRUE(seen.insert(b.next_u64()).second);
  }
  a.jump();
  for (int i = 0; i < 4096; ++i) {
    EXPECT_TRUE(seen.insert(a.next_u64()).second);
  }
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ddpm::netsim
