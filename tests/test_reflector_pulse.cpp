// Adversarial attacks that probe the boundaries of the pipeline: the
// reflector attack (marking names the reflectors, not the orchestrators)
// and the pulsing attack (evading the rate detector).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "detect/detector.hpp"
#include "marking/ddpm.hpp"
#include "transport/tcp.hpp"

namespace ddpm {
namespace {

TEST(Reflector, BackscatterConvergesOnVictim) {
  cluster::ClusterConfig config;
  config.topology = "mesh:6x6";
  config.router = "adaptive";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0;
  config.seed = 12;
  cluster::ClusterNetwork net(config);
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kReflector;
  attack.victim = 21;
  attack.zombies = {0, 7, 30};
  attack.rate_per_zombie = 0.001;
  attack.start_time = 0;
  net.set_attack(attack);
  transport::TcpConfig tcp;
  tcp.connection_rate_per_node = 0.0;
  transport::TcpWorkload workload(net, tcp);

  std::uint64_t synacks_at_victim = 0;
  workload.set_tap([&](const pkt::Packet& p, topo::NodeId at) {
    if (at == 21 && (p.tcp_flags & pkt::tcpflags::kSyn) &&
        (p.tcp_flags & pkt::tcpflags::kAck)) {
      ++synacks_at_victim;
    }
  });
  net.start();
  workload.start();
  net.run_until(300000);
  // The zombies never touch the victim; the reflectors' SYN+ACKs do.
  EXPECT_GT(synacks_at_victim, 100u);
  EXPECT_GT(workload.stats().backscatter, 100u);
}

TEST(Reflector, MarkingNamesReflectorsNotZombies) {
  // The fundamental limit the paper never discusses: packet marking
  // identifies the true ORIGIN OF THE PACKET — for reflected attacks that
  // is an innocent reflector, one hop of indirection away from the real
  // attacker.
  cluster::ClusterConfig config;
  config.topology = "mesh:6x6";
  config.router = "adaptive";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0;
  config.seed = 12;
  cluster::ClusterNetwork net(config);
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kReflector;
  attack.victim = 21;
  attack.zombies = {0, 7, 30};
  attack.rate_per_zombie = 0.001;
  attack.start_time = 0;
  net.set_attack(attack);
  transport::TcpConfig tcp;
  tcp.connection_rate_per_node = 0.0;
  transport::TcpWorkload workload(net, tcp);

  mark::DdpmIdentifier identifier(net.topology());
  std::set<topo::NodeId> named;
  workload.set_tap([&](const pkt::Packet& p, topo::NodeId at) {
    if (at != 21) return;
    if (!(p.tcp_flags & pkt::tcpflags::kAck)) return;  // backscatter only
    for (auto n : identifier.observe(p, at)) named.insert(n);
  });
  net.start();
  workload.start();
  net.run_until(300000);

  ASSERT_FALSE(named.empty());
  // The named nodes are reflectors — overwhelmingly innocent servers (a
  // zombie can appear only when another zombie happened to bounce off it,
  // in its innocent reflector role). The identifications are CORRECT: the
  // backscatter really did originate at the reflectors. The marking is
  // right; the attribution question is one level of indirection deeper
  // than any packet-origin scheme can answer.
  std::size_t innocent = 0;
  for (auto n : named) {
    innocent += std::find(attack.zombies.begin(), attack.zombies.end(), n) ==
                attack.zombies.end();
  }
  EXPECT_GT(innocent, 5u);
  EXPECT_GT(innocent * 10, named.size() * 8);  // >= 80% innocents
}

TEST(Pulsing, DutyCycleReducesInjectedVolume) {
  auto run = [](netsim::SimTime period, double duty) {
    cluster::ClusterConfig config;
    config.topology = "mesh:6x6";
    config.benign_rate_per_node = 0.0;
    config.seed = 3;
    cluster::ClusterNetwork net(config);
    attack::AttackConfig attack;
    attack.kind = attack::AttackKind::kUdpFlood;
    attack.victim = 35;
    attack.zombies = {0, 14};
    attack.rate_per_zombie = 0.01;
    attack.start_time = 0;
    attack.pulse_period = period;
    attack.pulse_duty = duty;
    net.set_attack(attack);
    net.start();
    net.run_until(400000);
    return net.metrics().injected_attack;
  };
  const auto continuous = run(0, 1.0);
  const auto half = run(20000, 0.5);
  const auto fifth = run(20000, 0.2);
  EXPECT_NEAR(double(half), double(continuous) * 0.5, double(continuous) * 0.1);
  EXPECT_NEAR(double(fifth), double(continuous) * 0.2, double(continuous) * 0.08);
}

TEST(Pulsing, ShortBurstsEvadeTheRateDetectorLongerOrForever) {
  auto detect_time = [](netsim::SimTime period, double duty) {
    cluster::ClusterConfig config;
    config.topology = "mesh:6x6";
    config.benign_rate_per_node = 0.0002;
    config.seed = 5;
    cluster::ClusterNetwork net(config);
    attack::AttackConfig attack;
    attack.kind = attack::AttackKind::kUdpFlood;
    attack.victim = 35;
    attack.zombies = {0, 14, 28};
    attack.rate_per_zombie = 0.004;
    attack.start_time = 50000;
    attack.pulse_period = period;
    attack.pulse_duty = duty;
    net.set_attack(attack);
    detect::RateThresholdDetector detector(0.006, 4000);
    net.set_delivery_hook([&](const pkt::Packet& p, topo::NodeId at) {
      if (at == 35) detector.observe(p, net.sim().now());
    });
    net.start();
    net.run_until(500000);
    return detector.alarm_time();
  };
  const auto continuous = detect_time(0, 1.0);
  ASSERT_TRUE(continuous.has_value());
  // A 10%-duty pulse keeps the EWMA below threshold most of the time:
  // detection is late or absent (parameters chosen so bursts are short
  // relative to the detector's half-life).
  const auto pulsed = detect_time(8000, 0.1);
  if (pulsed.has_value()) {
    EXPECT_GT(*pulsed, *continuous);
  } else {
    SUCCEED();  // fully evaded
  }
}

TEST(Reflector, TwoStageTracingNamesTheRealZombies) {
  // The constructive fix: every server records the DDPM-identified origin
  // of each SYN, keyed by its claimed source. Asking "who has been
  // impersonating the victim?" returns exactly the zombie set.
  cluster::ClusterConfig config;
  config.topology = "mesh:6x6";
  config.router = "adaptive";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0;
  config.seed = 12;
  cluster::ClusterNetwork net(config);
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kReflector;
  attack.victim = 21;
  attack.zombies = {0, 7, 30};
  attack.rate_per_zombie = 0.001;
  attack.start_time = 0;
  net.set_attack(attack);
  transport::TcpConfig tcp;
  tcp.connection_rate_per_node = 0.00002;  // benign handshakes mixed in
  transport::TcpWorkload workload(net, tcp);
  mark::DdpmIdentifier identifier(net.topology());
  workload.enable_reflection_tracing(&identifier);
  net.start();
  workload.start();
  net.run_until(300000);

  const auto traced = workload.trace_reflection(attack.victim);
  EXPECT_EQ(traced, attack.zombies);
  // Benign clients never impersonate anyone, so no other claimed-source
  // entry should implicate more than its own honest sender.
  const auto honest = workload.trace_reflection(5);
  for (auto n : honest) EXPECT_EQ(n, 5u);
}

TEST(Cusum, QuietOnBenignTraffic) {
  detect::CusumDetector detector(/*window=*/1000, /*benign_mean=*/2.0,
                                 /*slack=*/1.0, /*threshold=*/20.0);
  netsim::Rng rng(1);
  pkt::Packet p;
  netsim::SimTime t = 0;
  // ~2 arrivals per 1000-tick window for a long time.
  for (int i = 0; i < 2000; ++i) {
    t += netsim::SimTime(rng.next_exponential(0.002)) + 1;
    detector.observe(p, t);
  }
  EXPECT_FALSE(detector.alarmed()) << detector.statistic();
}

TEST(Cusum, CatchesSustainedFlood) {
  detect::CusumDetector detector(1000, 2.0, 1.0, 20.0);
  pkt::Packet p;
  netsim::SimTime t = 0;
  for (int i = 0; i < 300; ++i) {
    t += 50;  // 20 arrivals per window
    detector.observe(p, t);
  }
  EXPECT_TRUE(detector.alarmed());
}

TEST(Cusum, CatchesThePulsingAttackEwmaMisses) {
  // Head-to-head on the exact pulse train from the evasion test above:
  // 8000-tick period, 10% duty. CUSUM ratchets across bursts; EWMA decays
  // between them.
  auto feed = [](detect::Detector& detector) {
    netsim::Rng rng(7);
    pkt::Packet p;
    // Benign background ~0.0002/tick plus bursts of 0.012/tick for the
    // first 800 of every 8000 ticks.
    for (netsim::SimTime t = 0; t < 400000; ++t) {
      double rate = 0.0002;
      if (t % 8000 < 800) rate += 0.012;
      if (rng.next_bool(rate)) detector.observe(p, t);
    }
  };
  detect::RateThresholdDetector ewma(0.006, 4000);
  detect::CusumDetector cusum(/*window=*/2000, /*benign_mean=*/0.4,
                              /*slack=*/1.0, /*threshold=*/25.0);
  feed(ewma);
  feed(cusum);
  EXPECT_FALSE(ewma.alarmed());
  EXPECT_TRUE(cusum.alarmed());
}

TEST(Cusum, ResetClearsState) {
  detect::CusumDetector detector(1000, 1.0, 1.0, 5.0);
  pkt::Packet p;
  for (int i = 0; i < 100; ++i) detector.observe(p, netsim::SimTime(i * 10));
  ASSERT_TRUE(detector.alarmed());
  detector.reset();
  EXPECT_FALSE(detector.alarmed());
  EXPECT_EQ(detector.statistic(), 0.0);
}

}  // namespace
}  // namespace ddpm
