// End-to-end pipeline tests: detect -> identify -> block, across schemes.
#include "core/sis.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ddpm::core {
namespace {

ScenarioConfig flood_scenario(const std::string& scheme) {
  ScenarioConfig config;
  config.cluster.topology = "mesh:8x8";
  config.cluster.router = "adaptive";
  config.cluster.scheme = scheme;
  config.cluster.benign_rate_per_node = 0.0002;
  config.cluster.seed = 1234;
  config.identifier = scheme;
  config.detect_rate_threshold = 0.005;
  config.detect_half_life = 2000;
  config.duration = 400000;

  config.attack.kind = attack::AttackKind::kUdpFlood;
  config.attack.victim = 63;
  config.attack.zombies = {0, 9, 27, 36};
  config.attack.rate_per_zombie = 0.01;
  config.attack.spoof = attack::SpoofStrategy::kRandomCluster;
  config.attack.start_time = 20000;
  return config;
}

TEST(EndToEnd, DdpmIdentifiesAndBlocksEveryZombie) {
  auto config = flood_scenario("ddpm");
  SourceIdentificationSystem system(config);
  const ScenarioReport report = system.run();

  ASSERT_TRUE(report.detection_time.has_value());
  EXPECT_GT(*report.detection_time, config.attack.start_time);

  // Every zombie identified, nobody innocent named (perfect classifier).
  EXPECT_EQ(report.identified_sources,
            std::set<topo::NodeId>(config.attack.zombies.begin(),
                                   config.attack.zombies.end()));
  EXPECT_EQ(report.false_positives, 0u);
  EXPECT_EQ(report.true_positives, config.attack.zombies.size());

  // One packet per zombie suffices once tracing starts.
  EXPECT_LE(report.packets_to_first_identification, 1u);

  // Mitigation: blocks installed and the attack throttled at its sources.
  EXPECT_EQ(report.blocked_sources, report.identified_sources);
  EXPECT_GT(report.metrics.blocked_at_source, 0u);
  // The flood keeps offering traffic for ~95% of the run; blocking must
  // stop nearly all of it from reaching the victim.
  EXPECT_LT(report.attack_delivered_after_block,
            report.metrics.injected_attack / 10 + 100);
}

TEST(EndToEnd, DdpmUnaffectedBySpoofStrategy) {
  for (auto spoof : {attack::SpoofStrategy::kNone,
                     attack::SpoofStrategy::kRandomAny,
                     attack::SpoofStrategy::kVictimReflect}) {
    auto config = flood_scenario("ddpm");
    config.attack.spoof = spoof;
    SourceIdentificationSystem system(config);
    const ScenarioReport report = system.run();
    EXPECT_EQ(report.true_positives, config.attack.zombies.size())
        << attack::to_string(spoof);
    EXPECT_EQ(report.false_positives, 0u);
  }
}

TEST(EndToEnd, DpmDegradesUnderAdaptiveRouting) {
  // DPM's trained signatures assume stable routes; under adaptive routing
  // the observed signatures are essentially arbitrary, so lookups hit
  // trained entries of *innocent* nodes — identification loses precision
  // (paper §4.3). DDPM stays exact.
  auto ddpm_config = flood_scenario("ddpm");
  auto dpm_config = flood_scenario("dpm");
  const auto ddpm_report = SourceIdentificationSystem(ddpm_config).run();
  const auto dpm_report = SourceIdentificationSystem(dpm_config).run();
  EXPECT_EQ(ddpm_report.true_positives, 4u);
  EXPECT_EQ(ddpm_report.false_positives, 0u);
  EXPECT_GT(dpm_report.false_positives, 0u);
  // And DPM wrongly blocks those innocents when auto-block is on.
  EXPECT_GT(dpm_report.blocked_sources.size(), dpm_report.true_positives);
}

TEST(EndToEnd, DpmWorksBetterUnderDeterministicRouting) {
  auto config = flood_scenario("dpm");
  config.cluster.router = "dor";
  const auto report = SourceIdentificationSystem(config).run();
  // Signatures may still collide, but single-candidate identifications of
  // true zombies should occur under the routes DPM trained on.
  EXPECT_GE(report.true_positives, 1u);
}

TEST(EndToEnd, NoIdentifierMeansNoBlocks) {
  auto config = flood_scenario("none");
  const auto report = SourceIdentificationSystem(config).run();
  EXPECT_TRUE(report.identified_sources.empty());
  EXPECT_TRUE(report.blocked_sources.empty());
  EXPECT_EQ(report.metrics.blocked_at_source, 0u);
  // Without mitigation the victim keeps absorbing the flood.
  EXPECT_GT(report.metrics.delivered_attack, 500u);
}

TEST(EndToEnd, ImperfectClassifierCausesCollateralBlocks) {
  auto config = flood_scenario("ddpm");
  config.classifier_false_positive_rate = 0.9;
  const auto report = SourceIdentificationSystem(config).run();
  // DDPM names benign senders correctly too; a sloppy classifier turns
  // that precision into collateral damage.
  EXPECT_GT(report.false_positives, 0u);
  EXPECT_EQ(report.true_positives, config.attack.zombies.size());
}

TEST(EndToEnd, AutoBlockCanBeDisabled) {
  auto config = flood_scenario("ddpm");
  config.auto_block = false;
  const auto report = SourceIdentificationSystem(config).run();
  EXPECT_EQ(report.true_positives, config.attack.zombies.size());
  EXPECT_TRUE(report.blocked_sources.empty());
  EXPECT_EQ(report.metrics.blocked_at_source, 0u);
}

TEST(EndToEnd, SynFloodDetectedAndTraced) {
  auto config = flood_scenario("ddpm");
  config.attack.kind = attack::AttackKind::kSynFlood;
  const auto report = SourceIdentificationSystem(config).run();
  EXPECT_TRUE(report.detection_time.has_value());
  EXPECT_EQ(report.true_positives, config.attack.zombies.size());
}

TEST(EndToEnd, RunTwiceThrows) {
  auto config = flood_scenario("ddpm");
  config.duration = 1000;
  SourceIdentificationSystem system(config);
  system.run();
  EXPECT_THROW(system.run(), std::logic_error);
}

TEST(EndToEnd, ReportSummaryReadable) {
  auto config = flood_scenario("ddpm");
  config.duration = 100000;
  const auto report = SourceIdentificationSystem(config).run();
  const std::string s = report.summary();
  EXPECT_NE(s.find("identified"), std::string::npos);
  EXPECT_NE(s.find("detection"), std::string::npos);
}

TEST(MakeIdentifier, CoversAllSchemes) {
  const auto topo = topo::make_topology("mesh:8x8");
  EXPECT_EQ(make_identifier("none", *topo, 0, 64), nullptr);
  for (const char* name :
       {"ddpm", "dpm", "ppm-full", "ppm-xor", "ppm-bitdiff", "ppm-fragment"}) {
    EXPECT_NE(make_identifier(name, *topo, 0, 64), nullptr) << name;
  }
  EXPECT_THROW(make_identifier("bogus", *topo, 0, 64), std::invalid_argument);
}

TEST(EndToEnd, DeterministicAcrossRuns) {
  auto config = flood_scenario("ddpm");
  config.duration = 150000;
  const auto a = SourceIdentificationSystem(config).run();
  const auto b = SourceIdentificationSystem(config).run();
  EXPECT_EQ(a.metrics.injected(), b.metrics.injected());
  EXPECT_EQ(a.metrics.delivered(), b.metrics.delivered());
  EXPECT_EQ(a.identified_sources, b.identified_sources);
  EXPECT_EQ(a.detection_time, b.detection_time);
}

}  // namespace
}  // namespace ddpm::core
