#include "transport/tcp.hpp"

#include <gtest/gtest.h>

#include "marking/ddpm.hpp"

namespace ddpm::transport {
namespace {

cluster::ClusterConfig base_config() {
  cluster::ClusterConfig config;
  config.topology = "mesh:4x4";
  config.router = "adaptive";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0;  // TCP workload is the only traffic
  config.seed = 21;
  return config;
}

TEST(Tcp, ConnectionsCompleteOnIdleNetwork) {
  cluster::ClusterNetwork net(base_config());
  TcpConfig tcp;
  tcp.connection_rate_per_node = 0.00005;
  TcpWorkload workload(net, tcp);
  net.start();
  workload.start();
  net.run_until(600000);
  const TcpStats& s = workload.stats();
  EXPECT_GT(s.attempted, 200u);
  EXPECT_EQ(s.refused, 0u);
  EXPECT_EQ(s.attack_syns, 0u);
  // Nearly everything completes; only tail-end connections are in flight.
  EXPECT_GT(s.benign_success_rate(), 0.95);
  EXPECT_GE(s.established, s.completed);
}

TEST(Tcp, HandshakeOrdering) {
  // completed <= established <= attempted always.
  cluster::ClusterNetwork net(base_config());
  TcpConfig tcp;
  tcp.connection_rate_per_node = 0.0002;
  TcpWorkload workload(net, tcp);
  net.start();
  workload.start();
  for (netsim::SimTime t = 50000; t <= 300000; t += 50000) {
    net.run_until(t);
    const TcpStats& s = workload.stats();
    EXPECT_LE(s.completed, s.established);
    EXPECT_LE(s.established + s.refused + s.client_timeouts,
              s.attempted + 1);
  }
}

TEST(Tcp, SynFloodExhaustsBacklogAndRefusesBenign) {
  cluster::ClusterNetwork net(base_config());
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kSynFlood;
  attack.victim = 5;
  attack.zombies = {0, 10, 15};
  attack.rate_per_zombie = 0.002;  // >> backlog / timeout
  attack.spoof = attack::SpoofStrategy::kRandomCluster;
  attack.start_time = 50000;
  net.set_attack(attack);

  TcpConfig tcp;
  tcp.connection_rate_per_node = 0.00005;
  tcp.server_backlog = 32;
  tcp.handshake_timeout = 50000;
  TcpWorkload workload(net, tcp);
  net.start();
  workload.start();
  net.run_until(600000);

  const TcpStats& s = workload.stats();
  EXPECT_GT(s.attack_syns, 500u);
  // The victim's backlog pins at capacity and benign SYNs bounce.
  EXPECT_GT(s.refused, 0u);
  EXPECT_GT(s.backscatter, 0u);
  EXPECT_GT(s.half_open_expired, 0u);
  EXPECT_EQ(workload.half_open(5), tcp.server_backlog);
  // Other servers are unaffected.
  EXPECT_EQ(workload.half_open(6), 0u);
}

TEST(Tcp, MitigationRestoresService) {
  // The full paper pipeline at service level: identical SYN-flood runs,
  // one with DDPM-driven source blocking. Benign success must recover.
  auto run = [](bool mitigate) {
    cluster::ClusterNetwork net(base_config());
    attack::AttackConfig attack;
    attack.kind = attack::AttackKind::kSynFlood;
    attack.victim = 5;
    attack.zombies = {0, 10, 15};
    attack.rate_per_zombie = 0.002;
    attack.spoof = attack::SpoofStrategy::kRandomCluster;
    attack.start_time = 20000;
    net.set_attack(attack);
    TcpConfig tcp;
    tcp.connection_rate_per_node = 0.00005;
    tcp.server_backlog = 32;
    tcp.fixed_server = 5;  // node 5 is the cluster's service node
    TcpWorkload workload(net, tcp);
    mark::DdpmIdentifier identifier(net.topology());
    if (mitigate) {
      workload.set_tap([&](const pkt::Packet& p, topo::NodeId at) {
        if (at != 5 || !p.is_attack()) return;
        const auto named = identifier.observe(p, at);
        if (named.size() == 1) net.filter().block_source_node(named.front());
      });
    }
    net.start();
    workload.start();
    net.run_until(800000);
    return workload.stats();
  };
  const TcpStats undefended = run(false);
  const TcpStats defended = run(true);
  // Undefended: the service node's backlog stays pinned, most handshakes
  // bounce. Defended: zombies are cut at their switches within packets of
  // detection; the only residual loss is the zombies' own benign traffic
  // (quarantine collateral).
  EXPECT_LT(undefended.benign_success_rate(), 0.4);
  EXPECT_GT(defended.benign_success_rate(),
            undefended.benign_success_rate() + 0.3);
  EXPECT_LT(defended.attack_syns, undefended.attack_syns / 5);
}

TEST(Tcp, BackscatterGoesToSpoofedAddresses) {
  // With victim-reflect spoofing, every attack SYN claims the victim
  // itself: the SYN+ACK backscatter loops back to the victim.
  cluster::ClusterNetwork net(base_config());
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kSynFlood;
  attack.victim = 5;
  attack.zombies = {10};
  attack.rate_per_zombie = 0.001;
  attack.spoof = attack::SpoofStrategy::kVictimReflect;
  attack.start_time = 0;
  net.set_attack(attack);
  TcpConfig tcp;
  tcp.connection_rate_per_node = 0.0;  // attack only
  TcpWorkload workload(net, tcp);
  net.start();
  workload.start();
  net.run_until(200000);
  EXPECT_GT(workload.stats().attack_syns, 50u);
  EXPECT_GT(workload.stats().backscatter, 50u);
}

TEST(Tcp, UnroutableSpoofProducesNoSynAck) {
  cluster::ClusterNetwork net(base_config());
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kSynFlood;
  attack.victim = 5;
  attack.zombies = {10};
  attack.rate_per_zombie = 0.001;
  attack.spoof = attack::SpoofStrategy::kRandomAny;  // almost never valid
  attack.start_time = 0;
  net.set_attack(attack);
  TcpConfig tcp;
  tcp.connection_rate_per_node = 0.0;
  TcpWorkload workload(net, tcp);
  net.start();
  workload.start();
  net.run_until(200000);
  const TcpStats& s = workload.stats();
  EXPECT_GT(s.attack_syns, 50u);
  // Slots still consumed (the actual harm) even though nothing is sent.
  EXPECT_GT(s.backscatter, 0u);
  EXPECT_EQ(s.refused, 0u);  // no benign traffic to refuse here
}

}  // namespace
}  // namespace ddpm::transport
