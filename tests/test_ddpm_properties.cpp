// The central property of the paper: for EVERY topology, EVERY routing
// algorithm, and EVERY path the routing may produce — adaptive choices,
// misrouting detours, revisits, torus wraparounds, link failures — the
// accumulated distance vector identifies the true source from one packet.
#include <gtest/gtest.h>

#include <tuple>

#include "marking/ddpm.hpp"
#include "marking/walk.hpp"
#include "netsim/rng.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"

namespace ddpm::mark {
namespace {

using Param = std::tuple<const char* /*topology*/, const char* /*router*/>;

class DdpmInvariant : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    topo_ = topo::make_topology(std::get<0>(GetParam()));
    router_ = route::make_router(std::get<1>(GetParam()), *topo_);
  }
  std::unique_ptr<topo::Topology> topo_;
  std::unique_ptr<route::Router> router_;
};

TEST_P(DdpmInvariant, IdentifiesTrueSourceOnRandomPairs) {
  DdpmScheme scheme(*topo_);
  DdpmIdentifier identifier(*topo_);
  netsim::Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const auto src = topo::NodeId(rng.next_below(topo_->num_nodes()));
    auto dst = topo::NodeId(rng.next_below(topo_->num_nodes()));
    if (dst == src) dst = (dst + 1) % topo_->num_nodes();
    WalkOptions options;
    options.seed = rng.next_u64();
    const auto walk = walk_packet(*topo_, *router_, &scheme, src, dst, options);
    ASSERT_TRUE(walk.delivered());
    EXPECT_EQ(identifier.identify(dst, walk.packet.marking_field()), src)
        << "src=" << src << " dst=" << dst;
  }
}

TEST_P(DdpmInvariant, MidRouteVectorAlwaysEqualsCurrentMinusSource) {
  // Telescoping invariant, checked at every intermediate hop: decoding the
  // field at node X must always yield X - S (or X ^ S). This is also the
  // proof that intermediate values never overflow the codec.
  DdpmScheme scheme(*topo_);
  const DdpmCodec& codec = scheme.codec();
  netsim::Rng rng(99);
  const bool cube = topo_->kind() == topo::TopologyKind::kHypercube;
  for (int trial = 0; trial < 100; ++trial) {
    const auto src = topo::NodeId(rng.next_below(topo_->num_nodes()));
    auto dst = topo::NodeId(rng.next_below(topo_->num_nodes()));
    if (dst == src) dst = (dst + 1) % topo_->num_nodes();
    WalkOptions options;
    options.seed = rng.next_u64();
    const auto walk = walk_packet(*topo_, *router_, &scheme, src, dst, options);
    ASSERT_TRUE(walk.delivered());
    // Re-execute the recorded path hop by hop and check after each mark.
    pkt::Packet p;
    scheme.on_injection(p, src);
    const topo::Coord s = topo_->coord_of(src);
    for (std::size_t i = 1; i < walk.path.size(); ++i) {
      scheme.on_forward(p, walk.path[i - 1], walk.path[i]);
      const topo::Coord here = topo_->coord_of(walk.path[i]);
      const topo::Coord expect = cube ? (here ^ s) : (here - s);
      EXPECT_EQ(codec.decode(p.marking_field()), expect);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DdpmInvariant,
    ::testing::Combine(::testing::Values("mesh:4x4", "mesh:8x8", "mesh:2x3x4",
                                         "torus:4x4", "torus:8x8",
                                         "torus:3x3x3", "hypercube:4",
                                         "hypercube:6"),
                       ::testing::Values("dor", "adaptive",
                                         "adaptive-misroute", "oracle")));

class DdpmTurnModelInvariant : public ::testing::TestWithParam<const char*> {};

TEST_P(DdpmTurnModelInvariant, TwoDMeshTurnModels) {
  const auto topo = topo::make_topology("mesh:6x6");
  const auto router = route::make_router(GetParam(), *topo);
  DdpmScheme scheme(*topo);
  DdpmIdentifier identifier(*topo);
  netsim::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const auto src = topo::NodeId(rng.next_below(topo->num_nodes()));
    auto dst = topo::NodeId(rng.next_below(topo->num_nodes()));
    if (dst == src) dst = (dst + 1) % topo->num_nodes();
    WalkOptions options;
    options.seed = rng.next_u64();
    const auto walk = walk_packet(*topo, *router, &scheme, src, dst, options);
    ASSERT_TRUE(walk.delivered());
    EXPECT_EQ(identifier.identify(dst, walk.packet.marking_field()), src);
  }
}

INSTANTIATE_TEST_SUITE_P(TurnModels, DdpmTurnModelInvariant,
                         ::testing::Values("west-first", "north-last",
                                           "negative-first"));

TEST(DdpmInvariantFaults, HoldsUnderLinkFailuresWithDetours) {
  // Failures force non-minimal detours (misrouting router); the vector
  // still telescopes to D - S.
  const auto topo = topo::make_topology("mesh:6x6");
  const auto router = route::make_router("adaptive-misroute", *topo);
  DdpmScheme scheme(*topo);
  DdpmIdentifier identifier(*topo);
  netsim::Rng rng(5150);
  for (int round = 0; round < 30; ++round) {
    topo::LinkFailureSet failures;
    // Fail a few random links, keeping the network mostly intact.
    const auto links = topo->links();
    for (int f = 0; f < 4; ++f) {
      const auto& link = links[rng.next_below(links.size())];
      failures.fail(link.first, link.second);
    }
    for (int trial = 0; trial < 20; ++trial) {
      const auto src = topo::NodeId(rng.next_below(topo->num_nodes()));
      auto dst = topo::NodeId(rng.next_below(topo->num_nodes()));
      if (dst == src) dst = (dst + 1) % topo->num_nodes();
      WalkOptions options;
      options.failures = &failures;
      options.seed = rng.next_u64();
      const auto walk = walk_packet(*topo, *router, &scheme, src, dst, options);
      if (!walk.delivered()) continue;  // blocked/TTL: nothing to identify
      EXPECT_EQ(identifier.identify(dst, walk.packet.marking_field()), src);
    }
  }
}

TEST(DdpmInvariantScale, LargestSupportedTopologies) {
  // Table 3 boundary cases actually run: 128x128 mesh/torus, 16-cube.
  for (const char* spec : {"mesh:128x128", "torus:128x128", "hypercube:16"}) {
    const auto topo = topo::make_topology(spec);
    const auto router = route::make_router("adaptive", *topo);
    DdpmScheme scheme(*topo);
    DdpmIdentifier identifier(*topo);
    netsim::Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
      const auto src = topo::NodeId(rng.next_below(topo->num_nodes()));
      auto dst = topo::NodeId(rng.next_below(topo->num_nodes()));
      if (dst == src) dst = (dst + 1) % topo->num_nodes();
      WalkOptions options;
      options.seed = rng.next_u64();
      options.initial_ttl = 255;  // diameters exceed 64 here
      options.record_path = false;
      const auto walk = walk_packet(*topo, *router, &scheme, src, dst, options);
      ASSERT_TRUE(walk.delivered()) << spec;
      EXPECT_EQ(identifier.identify(dst, walk.packet.marking_field()), src)
          << spec;
    }
  }
}

}  // namespace
}  // namespace ddpm::mark
