// Differential and unit coverage for the calendar-queue event wheel.
//
// The wheel's contract is "EventQueue, faster for regular cadences": same
// (time, scheduling-order) FIFO semantics, same ticket/generation
// cancellation, same monotonic-clock checks. The stress tests here run the
// wheel and the 4-ary heap side by side on identical operation sequences —
// random same-period mixes, irregular far-future timers that force the
// wheel's overflow heap, and cancel/tombstone interplay — and require the
// fired-event sequences to match exactly. A divergence of even one
// same-instant ordering fails.
#include "netsim/event_wheel.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "netsim/event_queue.hpp"
#include "netsim/simulator.hpp"
#include "wormhole/wheel_runner.hpp"

#include "attack/traffic.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"

namespace ddpm::netsim {
namespace {

TEST(EventWheel, PopsInTimeOrder) {
  EventWheel q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventWheel, SimultaneousEventsFireInScheduleOrder) {
  EventWheel q;
  std::vector<int> fired;
  for (int i = 0; i < 50; ++i) {
    q.schedule(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fired[std::size_t(i)], i);
}

TEST(EventWheel, HeapEntriesWinSameInstantTies) {
  // An event scheduled for T while T was beyond the window (heap path)
  // predates — in global scheduling order — any bucket entry for T, so it
  // must fire first when the tie surfaces.
  EventWheel q;
  ASSERT_EQ(q.window(), EventWheel::kDefaultWindow);
  std::vector<int> fired;
  q.schedule(2000, [&] { fired.push_back(0); });  // out of window: heap
  EXPECT_EQ(q.heap_scheduled(), 1u);
  q.schedule(1500, [&] { fired.push_back(-1); });  // also heap
  q.pop().second();  // fires at 1500; window now covers 2000
  q.schedule(2000, [&] { fired.push_back(1); });  // bucket
  q.schedule(2000, [&] { fired.push_back(2); });  // bucket
  EXPECT_EQ(q.wheel_scheduled(), 2u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{-1, 0, 1, 2}));
}

TEST(EventWheel, PeriodicCadenceStaysOnBucketPath) {
  EventWheel q;
  // A self-rescheduling periodic event with period << window: after the
  // initial schedule, every reschedule lands in a bucket.
  struct Tick {
    EventWheel* q;
    int remaining;
    SimTime period;
    void operator()() {
      if (--remaining > 0) q->schedule(q->last_popped_time() + period, *this);
    }
  };
  q.schedule(7, Tick{&q, 5000, 7});
  std::uint64_t pops = 0;
  while (!q.empty()) {
    q.pop().second();
    ++pops;
  }
  EXPECT_EQ(pops, 5000u);
  EXPECT_EQ(q.heap_scheduled(), 0u);
  EXPECT_EQ(q.wheel_scheduled(), 5000u);
}

TEST(EventWheel, FarTimersOverflowToHeapAndStillFireInOrder) {
  EventWheel q;
  std::vector<int> fired;
  q.schedule(500000, [&] { fired.push_back(2); });   // far: heap
  q.schedule(3, [&] { fired.push_back(0); });        // near: bucket
  q.schedule(900000, [&] { fired.push_back(3); });   // far: heap
  q.schedule(1000, [&] { fired.push_back(1); });     // near: bucket
  EXPECT_EQ(q.heap_scheduled(), 2u);
  EXPECT_EQ(q.wheel_scheduled(), 2u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventWheel, CancelTombstonesAndStaleIdsStayDead) {
  EventWheel q;
  bool fired = false;
  const EventId id = q.schedule(10, [&] { fired = true; });
  q.schedule(20, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.tombstone_count(), 1u);
  EXPECT_FALSE(q.cancel(id)) << "double cancel must fail";
  while (!q.empty()) q.pop().second();
  EXPECT_FALSE(fired);
  EXPECT_EQ(q.tombstone_count(), 0u) << "pop must sweep the dead prefix";

  // Stale ids survive clear() without hitting recycled slots. (The clock
  // watermark is at 20 from the pops above; clear() resets it.)
  const EventId stale = q.schedule(25, [] {});
  q.clear();
  EXPECT_FALSE(q.cancel(stale));
  bool fresh = false;
  q.schedule(1, [&fresh] { fresh = true; });
  EXPECT_FALSE(q.cancel(stale));
  q.pop().second();
  EXPECT_TRUE(fresh);
}

TEST(EventWheel, HeavyCancellationCompactsBothStores) {
  EventWheel q;
  // Rounds alternate near (bucket) and far (heap) targets so the sweep
  // policy exercises both stores.
  for (int round = 0; round < 50; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 400; ++i) {
      const SimTime base = (i % 2 == 0) ? 0 : 100000;
      ids.push_back(
          q.schedule(base + SimTime(round * 10 + i % 10), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i % 100 != 0) {
        EXPECT_TRUE(q.cancel(ids[i]));
      }
    }
  }
  EXPECT_EQ(q.size(), 50u * 4u);
  SimTime last = 0;
  while (!q.empty()) {
    auto [when, action] = q.pop();
    EXPECT_GE(when, last);
    last = when;
  }
}

TEST(EventWheelDeathTest, SchedulingInTheSimulatedPastIsFatal) {
  EXPECT_DEATH(
      {
        EventWheel q;
        q.schedule(100, [] {});
        q.pop().second();
        q.schedule(50, [] {});  // behind the popped watermark
      },
      "simulated past");
}

/// One operation sequence applied to both implementations; every pop must
/// surface the same (time, token) on both sides.
void run_differential(std::uint64_t seed, std::uint64_t near_span,
                      std::uint64_t far_bias, int steps) {
  EventQueue heap;
  EventWheel wheel;
  std::uint64_t heap_token = 0;
  std::uint64_t wheel_token = 0;
  std::uint64_t next_token = 0;
  std::size_t pending = 0;
  std::vector<std::pair<EventId, EventId>> ids;  // (heap id, wheel id)

  std::uint64_t x = seed;
  auto rnd = [&x](std::uint64_t bound) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x % bound;
  };

  SimTime now = 0;
  for (int step = 0; step < steps; ++step) {
    const std::uint64_t op = rnd(10);
    if (op < 5 || pending == 0) {
      // Mostly near-future (bucket) times; far_bias controls how often a
      // timestamp lands beyond the wheel window (overflow heap).
      SimTime when = now + rnd(near_span);
      if (far_bias != 0 && rnd(far_bias) == 0) when += 100000 + rnd(100000);
      const std::uint64_t token = next_token++;
      ids.emplace_back(
          heap.schedule(when, [&heap_token, token] { heap_token = token; }),
          wheel.schedule(when, [&wheel_token, token] { wheel_token = token; }));
      ++pending;
    } else if (op < 7 && !ids.empty()) {
      // Cancel the same (possibly stale) id pair on both; results agree.
      const auto [hid, wid] = ids[rnd(ids.size())];
      const bool h = heap.cancel(hid);
      const bool w = wheel.cancel(wid);
      ASSERT_EQ(h, w);
      if (h) --pending;
    } else {
      ASSERT_EQ(heap.empty(), wheel.empty());
      ASSERT_EQ(heap.size(), wheel.size());
      if (!heap.empty()) {
        ASSERT_EQ(heap.next_time(), wheel.next_time());
        auto [hw, ha] = heap.pop();
        auto [ww, wa] = wheel.pop();
        ASSERT_EQ(hw, ww);
        ha();
        wa();
        ASSERT_EQ(heap_token, wheel_token)
            << "same-instant FIFO order diverged at t=" << hw;
        now = hw;
        --pending;
      }
    }
  }
  while (!heap.empty()) {
    ASSERT_FALSE(wheel.empty());
    auto [hw, ha] = heap.pop();
    auto [ww, wa] = wheel.pop();
    ASSERT_EQ(hw, ww);
    ha();
    wa();
    ASSERT_EQ(heap_token, wheel_token);
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(EventWheel, DifferentialStressNearWindowMix) {
  // Times within the window: pure bucket path against the heap model.
  run_differential(0x243f6a8885a308d3ull, 800, 0, 20000);
}

TEST(EventWheel, DifferentialStressSamePeriodHeavy) {
  // Tiny spread: massive same-instant collisions stress FIFO tie-breaks.
  run_differential(0x9e3779b97f4a7c15ull, 4, 0, 20000);
}

TEST(EventWheel, DifferentialStressIrregularOverflowMix) {
  // One in eight schedules jumps far beyond the window, landing in the
  // wheel's overflow heap; ordering across the bucket/heap boundary —
  // including ties as far events come into window — must still match.
  run_differential(0xd1b54a32d192ed03ull, 1200, 8, 20000);
}

}  // namespace
}  // namespace ddpm::netsim

namespace ddpm::wormhole {
namespace {

/// The wormhole link clock driven as a periodic wheel event must be
/// observationally identical to stepping the network directly, and must
/// never touch the wheel's overflow heap.
TEST(WheelRunner, WheelDrivenRunMatchesDirectRun) {
  const auto topo = topo::make_topology("torus:4x4");
  const auto router = route::make_router("adaptive", *topo);

  wormhole::WormholeNetwork direct(*topo, *router, nullptr, {});
  wormhole::WormholeNetwork wheeled(*topo, *router, nullptr, {});

  attack::UniformPattern pattern(*topo);
  netsim::Rng rng_a(77);
  netsim::Rng rng_b(77);
  const auto load = [&](wormhole::WormholeNetwork& net, netsim::Rng& rng) {
    for (int i = 0; i < 200; ++i) {
      const auto src = topo::NodeId(rng.next_below(topo->num_nodes()));
      const auto dst = pattern.pick_dest(src, rng);
      pkt::Packet p;
      p.header = pkt::IpHeader(src + 1, dst + 1, pkt::IpProto::kUdp, 44);
      p.true_source = src;
      p.dest_node = dst;
      p.payload_bytes = 44;
      net.inject(std::move(p), src);
    }
  };
  load(direct, rng_a);
  load(wheeled, rng_b);

  direct.run(600);

  netsim::Simulator sim;
  const std::uint64_t executed = run_on_wheel(sim, wheeled, 600, 5);
  EXPECT_EQ(executed, 600u);
  EXPECT_EQ(sim.now(), 600u * 5u);

  EXPECT_EQ(wheeled.cycle(), direct.cycle());
  EXPECT_EQ(wheeled.delivered(), direct.delivered());
  EXPECT_EQ(wheeled.flits_in_flight(), direct.flits_in_flight());
}

}  // namespace
}  // namespace ddpm::wormhole
