// Telemetry subsystem tests: registry handle semantics, snapshot merge
// algebra, Chrome-trace emission, and the end-to-end acceptance check that
// a mesh:8x8 flood scenario reports per-switch drops and marks.
#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/sis.hpp"
#include "telemetry/probes.hpp"
#include "telemetry/trace.hpp"

namespace ddpm::telemetry {
namespace {

// ---------------------------------------------------------------- registry

TEST(Registry, CounterHandleWritesThroughToSnapshot) {
  Registry reg;
  Counter hits = reg.counter("cache.hits");
  hits.inc();
  hits.inc(4);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("cache.hits"), 5u);
}

TEST(Registry, SameKeyRegistersOnceSharesSlot) {
  Registry reg;
  Counter a = reg.counter("x", "switch=3");
  Counter b = reg.counter("x", "switch=3");
  a.inc();
  b.inc();
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.snapshot().counter_value("x{switch=3}"), 2u);
}

TEST(Registry, MakeKeyFormatsLabels) {
  EXPECT_EQ(Registry::make_key("a.b", ""), "a.b");
  EXPECT_EQ(Registry::make_key("link.tx", "switch=3,port=+x"),
            "link.tx{switch=3,port=+x}");
}

TEST(Registry, GaugeTracksValueAndPeak) {
  Registry reg;
  Gauge depth = reg.gauge("queue.depth");
  depth.set(4.0);
  depth.set(9.0);
  depth.set(2.0);
  depth.add(1.0);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 3.0);
  EXPECT_DOUBLE_EQ(snap.gauges[0].peak, 9.0);
}

TEST(Registry, HistogramBinsAndSaturation) {
  Registry reg;
  HistogramHandle h = reg.histogram("lat", {}, 0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.5);
  h.add(9.5);
  h.add(42.0);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& e = snap.histograms[0];
  EXPECT_EQ(e.total, 4u);
  EXPECT_EQ(e.underflow, 1u);
  EXPECT_EQ(e.overflow, 1u);
  EXPECT_EQ(e.bins[0], 1u);
  EXPECT_EQ(e.bins[9], 1u);
  EXPECT_DOUBLE_EQ(e.sum, 51.0);
}

TEST(Registry, DisabledRegistryIsInert) {
  Registry reg(false);
  Counter c = reg.counter("a");
  Gauge g = reg.gauge("b");
  HistogramHandle h = reg.histogram("c", {}, 0.0, 1.0, 4);
  c.inc(100);
  g.set(5.0);
  h.add(0.5);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Registry, DefaultConstructedHandlesAreInert) {
  Counter c;
  Gauge g;
  HistogramHandle h;
  c.inc();   // must not crash
  g.set(1.0);
  h.add(1.0);
}

TEST(Registry, ResetZeroesButKeepsRegistrations) {
  Registry reg;
  Counter c = reg.counter("n");
  c.inc(7);
  reg.reset();
  EXPECT_EQ(reg.snapshot().counter_value("n"), 0u);
  c.inc();  // outstanding handle still points at the live slot
  EXPECT_EQ(reg.snapshot().counter_value("n"), 1u);
}

TEST(Registry, SnapshotSortedByKey) {
  Registry reg;
  reg.counter("zeta").inc();
  reg.counter("alpha").inc();
  reg.counter("mid", "switch=1").inc();
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].key, "alpha");
  EXPECT_EQ(snap.counters[1].key, "mid{switch=1}");
  EXPECT_EQ(snap.counters[2].key, "zeta");
}

// ---------------------------------------------------------------- snapshot

TEST(Snapshot, CounterSumPrefix) {
  Registry reg;
  reg.counter("switch.drop_ttl", "switch=0").inc(2);
  reg.counter("switch.drop_ttl", "switch=1").inc(3);
  reg.counter("switch.forwarded", "switch=0").inc(10);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_sum_prefix("switch.drop_ttl"), 5u);
  EXPECT_EQ(snap.counter_sum_prefix("switch."), 15u);
  EXPECT_EQ(snap.counter_sum_prefix("nope"), 0u);
}

TEST(Snapshot, MergeAddsSharedSeries) {
  Registry a, b;
  a.counter("n").inc(2);
  b.counter("n").inc(3);
  a.gauge("g").set(5.0);
  b.gauge("g").set(7.0);
  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counter_value("n"), 5u);
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges[0].value, 12.0);  // values sum
  EXPECT_DOUBLE_EQ(merged.gauges[0].peak, 7.0);    // peaks max
}

TEST(Snapshot, MergeDisjointSnapshotsInsertsSorted) {
  // Disjoint key sets — the shape produced when replications instrument
  // different switches. Union must come out sorted with values intact.
  Registry a, b;
  a.counter("m", "switch=0").inc(1);
  a.counter("z.last").inc(9);
  b.counter("a.first").inc(4);
  b.counter("m", "switch=1").inc(2);
  b.histogram("h", {}, 0.0, 4.0, 4).add(1.0);
  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  ASSERT_EQ(merged.counters.size(), 4u);
  EXPECT_EQ(merged.counters[0].key, "a.first");
  EXPECT_EQ(merged.counters[1].key, "m{switch=0}");
  EXPECT_EQ(merged.counters[2].key, "m{switch=1}");
  EXPECT_EQ(merged.counters[3].key, "z.last");
  EXPECT_EQ(merged.counter_value("a.first"), 4u);
  EXPECT_EQ(merged.counter_value("z.last"), 9u);
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].total, 1u);
  // Merging the other way yields the identical snapshot.
  MetricsSnapshot reversed = b.snapshot();
  reversed.merge(a.snapshot());
  EXPECT_EQ(reversed.to_json(), merged.to_json());
}

TEST(Snapshot, MergeHistogramBinsAdd) {
  Registry a, b;
  a.histogram("h", {}, 0.0, 10.0, 10).add(1.5);
  b.histogram("h", {}, 0.0, 10.0, 10).add(1.7);
  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].total, 2u);
  EXPECT_EQ(merged.histograms[0].bins[1], 2u);
}

TEST(Snapshot, JsonAndCsvAreStableAndParseable) {
  Registry reg;
  reg.counter("a").inc(1);
  reg.gauge("b").set(2.5);
  reg.histogram("c", {}, 0.0, 2.0, 2).add(0.5);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.to_json(), snap.to_json());  // deterministic
  const std::string csv = snap.to_csv();
  EXPECT_NE(csv.find("counter,a,1"), std::string::npos);
  EXPECT_NE(csv.find("gauge,b,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,c,"), std::string::npos);
}

// ------------------------------------------------------------------ tracer

TEST(Tracer, RecordsAgainstBoundClock) {
  Tracer tracer;
  std::uint64_t clock = 100;
  tracer.set_clock(&clock);
  tracer.instant("alarm", kPidPipeline, 0);
  clock = 250;
  tracer.counter("depth", kPidKernel, 3.0);
  EXPECT_EQ(tracer.recorded(), 2u);
  const std::string json = tracer.flush_to_string();
  EXPECT_NE(json.find("\"ts\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 250"), std::string::npos);
  EXPECT_NE(json.find("\"alarm\""), std::string::npos);
}

TEST(Tracer, SpanCoversScope) {
  Tracer tracer;
  std::uint64_t clock = 10;
  tracer.set_clock(&clock);
  {
    TraceSpan span(&tracer, "work", kPidCluster, 7);
    clock = 60;
  }
  const std::string json = tracer.flush_to_string();
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 7"), std::string::npos);
}

TEST(Tracer, RingDropsOldestAndCounts) {
  Tracer tracer(4);
  std::uint64_t clock = 0;
  tracer.set_clock(&clock);
  for (clock = 1; clock <= 10; ++clock) {
    tracer.instant("e", kPidKernel, 0);
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.retained(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const std::string json = tracer.flush_to_string();
  // Oldest events evicted: ts 1..6 gone, 7..10 retained, in order.
  EXPECT_EQ(json.find("\"ts\": 1,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 6"), std::string::npos);
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  tracer.instant("e", 0, 0);
  TraceSpan span(&tracer, "s", 0, 0);
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(Tracer, MetadataNamesLanes) {
  Tracer tracer;
  name_standard_processes(tracer);
  tracer.set_thread_name(kPidCluster, 3, "switch 3");
  const std::string json = tracer.flush_to_string();
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("event kernel"), std::string::npos);
  EXPECT_NE(json.find("switch 3"), std::string::npos);
}

TEST(Tracer, ClearKeepsNamesAndClock) {
  Tracer tracer;
  std::uint64_t clock = 5;
  tracer.set_clock(&clock);
  tracer.set_process_name(0, "lane");
  tracer.instant("e", 0, 0);
  tracer.clear();
  EXPECT_EQ(tracer.retained(), 0u);
  tracer.instant("f", 0, 0);
  const std::string json = tracer.flush_to_string();
  EXPECT_EQ(json.find("\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"f\""), std::string::npos);
  EXPECT_NE(json.find("lane"), std::string::npos);
}

// -------------------------------------------------------------- acceptance

core::ScenarioConfig flood_scenario() {
  core::ScenarioConfig config;
  config.cluster.topology = "mesh:8x8";
  config.cluster.router = "adaptive";
  config.cluster.scheme = "ddpm";
  config.cluster.benign_rate_per_node = 0.0002;
  config.cluster.seed = 1234;
  config.identifier = "ddpm";
  config.detect_rate_threshold = 0.005;
  config.detect_half_life = 2000;
  config.duration = 200000;
  config.attack.kind = attack::AttackKind::kUdpFlood;
  config.attack.victim = 63;
  config.attack.zombies = {0, 9, 27, 36};
  config.attack.rate_per_zombie = 0.01;
  config.attack.spoof = attack::SpoofStrategy::kRandomCluster;
  config.attack.start_time = 20000;
  return config;
}

#if DDPM_TELEMETRY_ENABLED

TEST(Acceptance, FloodScenarioReportsPerSwitchDropsAndMarks) {
  auto config = flood_scenario();
  // Leave the flood unmitigated and hot enough to overflow output queues,
  // so per-switch drop counters have something to report.
  config.auto_block = false;
  config.attack.rate_per_zombie = 0.08;
  core::SourceIdentificationSystem system(config);
  const core::ScenarioReport report = system.run();
  const MetricsSnapshot& snap = report.telemetry;

  ASSERT_FALSE(snap.empty());
  // Per-switch forwarding series exist for the whole 8x8 mesh.
  for (int sw : {0, 27, 63}) {
    const std::string key =
        "switch.forwarded{switch=" + std::to_string(sw) + "}";
    EXPECT_NE(snap.counter_value(key), 0u) << key;
  }
  // A saturating flood drops packets somewhere, attributed per switch.
  EXPECT_GT(snap.counter_sum_prefix("switch.drop_"), 0u);
  // The marking scheme stamped packets.
  EXPECT_GT(snap.counter_value("mark.applied{scheme=ddpm}"), 0u);
  // The pipeline detected and identified.
  EXPECT_GT(snap.counter_value("detect.firings"), 0u);
  EXPECT_GT(snap.counter_value("identify.correct"), 0u);
  // Link-level series carry port labels.
  EXPECT_GT(snap.counter_sum_prefix("link.tx_packets{switch="), 0u);
}

TEST(Acceptance, TraceOfFloodScenarioIsWellFormed) {
  auto config = flood_scenario();
  config.duration = 60000;
  core::SourceIdentificationSystem system(config);
  Tracer tracer;
  name_standard_processes(tracer);
  system.set_tracer(&tracer);
  (void)system.run();
  EXPECT_GT(tracer.recorded(), 0u);
  const std::string json = tracer.flush_to_string();
  EXPECT_EQ(json.find("\"ts\": -"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("link.tx"), std::string::npos);
}

TEST(Acceptance, RuntimeDisabledClusterProducesEmptyTelemetry) {
  auto config = flood_scenario();
  config.duration = 30000;
  config.cluster.telemetry = false;
  core::SourceIdentificationSystem system(config);
  const core::ScenarioReport report = system.run();
  EXPECT_TRUE(report.telemetry.empty());
}

#else  // !DDPM_TELEMETRY_ENABLED

TEST(Acceptance, CompiledOutProbesYieldNoSeries) {
  auto config = flood_scenario();
  config.duration = 30000;
  core::SourceIdentificationSystem system(config);
  const core::ScenarioReport report = system.run();
  // Probe-fed series are gone; only snapshot-time aggregate gauges remain.
  EXPECT_EQ(report.telemetry.counter_sum_prefix("switch."), 0u);
  EXPECT_EQ(report.telemetry.counter_sum_prefix("mark."), 0u);
  EXPECT_TRUE(report.telemetry.counters.empty());
}

#endif  // DDPM_TELEMETRY_ENABLED

}  // namespace
}  // namespace ddpm::telemetry
