#include "marking/ddpm.hpp"

#include <gtest/gtest.h>

#include "marking/walk.hpp"
#include "routing/dor.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace ddpm::mark {
namespace {

using topo::Coord;

TEST(DdpmCodec, RequiredBitsMatchTable3) {
  // Table 3: 128x128 mesh/torus and the 16-cube exactly fill the field.
  EXPECT_EQ(DdpmCodec::required_bits(topo::Mesh({128, 128})), 16);
  EXPECT_EQ(DdpmCodec::required_bits(topo::Torus({128, 128})), 16);
  EXPECT_EQ(DdpmCodec::required_bits(topo::Hypercube(16)), 16);
  EXPECT_TRUE(DdpmCodec::fits(topo::Mesh({128, 128})));
  EXPECT_FALSE(DdpmCodec::fits(topo::Mesh({256, 128})));
}

TEST(DdpmCodec, ThreeDimensionalPacking) {
  // Paper §5: "two five-bits and one six-bits" for an 8192-node 3-D case.
  EXPECT_EQ(DdpmCodec::required_bits(topo::Mesh({16, 16, 32})), 16);
  EXPECT_TRUE(DdpmCodec::fits(topo::Mesh({16, 16, 32})));
  EXPECT_FALSE(DdpmCodec::fits(topo::Mesh({16, 32, 32})));
}

TEST(DdpmCodec, ConstructionThrowsWhenTooBig) {
  topo::Mesh big({256, 256});
  EXPECT_THROW(DdpmCodec codec(big), std::invalid_argument);
}

TEST(DdpmCodec, MeshEncodeDecodeRoundTrip) {
  topo::Mesh m({8, 8});
  DdpmCodec codec(m);
  for (int a = -7; a <= 7; ++a) {
    for (int b = -7; b <= 7; ++b) {
      const Coord v{a, b};
      EXPECT_EQ(codec.decode(codec.encode(v)), v);
    }
  }
}

TEST(DdpmCodec, TorusFullRangeRoundTrip) {
  // Torus displacements span the full [-(k-1), k-1] because they are raw
  // coordinate differences (telescoping), not ring distances.
  topo::Torus t({8, 8});
  DdpmCodec codec(t);
  for (int a = -7; a <= 7; ++a) {
    const Coord v{a, -a};
    EXPECT_EQ(codec.decode(codec.encode(v)), v);
  }
}

TEST(DdpmCodec, HypercubeXorBits) {
  topo::Hypercube h(5);
  DdpmCodec codec(h);
  EXPECT_TRUE(codec.is_hypercube());
  const Coord v{1, 0, 1, 1, 0};
  EXPECT_EQ(codec.decode(codec.encode(v)), v);
  EXPECT_EQ(codec.encode(v), 0b01101);  // bit d = dimension d
}

TEST(DdpmCodec, ZeroVectorIsZeroField) {
  topo::Mesh m({8, 8});
  DdpmCodec codec(m);
  EXPECT_EQ(codec.encode(Coord{0, 0}), 0);
}

TEST(DdpmScheme, PaperFigure3bWalkthrough) {
  // Figure 3(b): a packet travels the 4x4 mesh adaptively from (1,1) to
  // (2,3); the distance vector evolves (1,0), (2,0), (2,-1), (1,-1), (1,0),
  // (1,1), (1,2), and the victim recovers (2,3) - (1,2) = (1,1).
  topo::Mesh m({4, 4});
  DdpmScheme scheme(m);
  DdpmIdentifier identifier(m);
  const std::vector<Coord> visited{{1, 1}, {2, 1}, {3, 1}, {3, 0}, {2, 0},
                                   {2, 1}, {2, 2}, {2, 3}};
  const std::vector<Coord> expected_v{{1, 0}, {2, 0}, {2, -1}, {1, -1},
                                      {1, 0}, {1, 1}, {1, 2}};
  pkt::Packet p;
  p.dest_node = m.id_of(visited.back());
  scheme.on_injection(p, m.id_of(visited.front()));
  const DdpmCodec& codec = scheme.codec();
  for (std::size_t i = 1; i < visited.size(); ++i) {
    scheme.on_forward(p, m.id_of(visited[i - 1]), m.id_of(visited[i]));
    EXPECT_EQ(codec.decode(p.marking_field()), expected_v[i - 1])
        << "after hop " << i;
  }
  EXPECT_EQ(identifier.identify(p.dest_node, p.marking_field()),
            m.id_of(Coord{1, 1}));
}

TEST(DdpmScheme, PaperFigure3cHypercubeWalkthrough) {
  // Figure 3(c): in the 3-cube the vector evolves (1,0,0), (1,0,1),
  // (0,0,1), (0,1,1), (0,1,0), (1,1,0); (0,0,0) XORs to source (1,1,0).
  topo::Hypercube h(3);
  DdpmScheme scheme(h);
  DdpmIdentifier identifier(h);
  const std::vector<Coord> visited{{1, 1, 0}, {0, 1, 0}, {0, 1, 1},
                                   {1, 1, 1}, {1, 0, 1}, {1, 0, 0},
                                   {0, 0, 0}};
  const std::vector<Coord> expected_v{{1, 0, 0}, {1, 0, 1}, {0, 0, 1},
                                      {0, 1, 1}, {0, 1, 0}, {1, 1, 0}};
  pkt::Packet p;
  p.dest_node = h.id_of(visited.back());
  scheme.on_injection(p, h.id_of(visited.front()));
  for (std::size_t i = 1; i < visited.size(); ++i) {
    scheme.on_forward(p, h.id_of(visited[i - 1]), h.id_of(visited[i]));
    EXPECT_EQ(scheme.codec().decode(p.marking_field()), expected_v[i - 1]);
  }
  EXPECT_EQ(identifier.identify(p.dest_node, p.marking_field()),
            h.id_of(Coord{1, 1, 0}));
}

TEST(DdpmScheme, InjectionResetsAttackerSeededField) {
  // Figure 4 zeroes V at the first switch, so a pre-loaded Marking Field
  // cannot forge a different source — unlike PPM/DPM.
  topo::Mesh m({4, 4});
  DdpmScheme scheme(m);
  route::DimensionOrderRouter router(m);
  DdpmIdentifier identifier(m);
  const auto src = m.id_of(Coord{0, 0});
  const auto dst = m.id_of(Coord{3, 3});
  const auto walk =
      walk_packet(m, router, &scheme, src, dst, {}, /*seed_marking_field=*/0xffff);
  ASSERT_TRUE(walk.delivered());
  EXPECT_EQ(identifier.identify(dst, walk.packet.marking_field()), src);
}

TEST(DdpmIdentifier, SinglePacketSingleCandidate) {
  topo::Mesh m({4, 4});
  DdpmScheme scheme(m);
  route::DimensionOrderRouter router(m);
  DdpmIdentifier identifier(m);
  const auto walk = walk_packet(m, router, &scheme, 5, 10);
  ASSERT_TRUE(walk.delivered());
  const auto candidates = identifier.observe(walk.packet, 10);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates.front(), 5u);
}

TEST(DdpmIdentifier, OutOfRangeVectorYieldsNoCandidate) {
  // A corrupted field decoding to a coordinate outside the mesh names
  // nobody (cannot happen with honest switches).
  topo::Mesh m({4, 4});
  DdpmIdentifier identifier(m);
  DdpmCodec codec(m);
  const auto field = codec.encode(Coord{3, 3});
  // Victim (0,0): source would be (-3,-3), outside the mesh.
  EXPECT_FALSE(identifier.identify(m.id_of(Coord{0, 0}), field).has_value());
}

TEST(DdpmScheme, SpoofedSourceAddressIsIrrelevant) {
  // The scheme never reads the IP source; a spoofed header still traces.
  topo::Torus t({4, 4});
  DdpmScheme scheme(t);
  route::DimensionOrderRouter router(t);
  DdpmIdentifier identifier(t);
  auto walk = walk_packet(t, router, &scheme, 3, 12);
  ASSERT_TRUE(walk.delivered());
  walk.packet.header.set_source(0xdeadbeef);  // spoof after the fact
  const auto candidates = identifier.observe(walk.packet, 12);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates.front(), 3u);
}

}  // namespace
}  // namespace ddpm::mark
