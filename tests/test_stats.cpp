#include "netsim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ddpm::netsim {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptyIsIdentity) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(Histogram, BinsAndBounds) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);  // underflow
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);  // overflow (hi-exclusive)
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.bin(9), 1u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(double(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.1), 10.0, 1.5);
}

TEST(Histogram, ToStringProducesRows) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(double(i % 10));
  const std::string s = h.to_string();
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(EwmaRate, ConvergesToSteadyRate) {
  EwmaRate rate(1000.0);
  // One event every 10 ticks -> rate 0.1.
  for (std::uint64_t t = 0; t < 100000; t += 10) rate.observe(t);
  EXPECT_NEAR(rate.rate(100000), 0.1, 0.02);
}

TEST(EwmaRate, DecaysAfterTrafficStops) {
  EwmaRate rate(100.0);
  for (std::uint64_t t = 0; t < 1000; ++t) rate.observe(t);
  const double busy = rate.rate(1000);
  const double later = rate.rate(2000);
  EXPECT_GT(busy, 0.5);
  EXPECT_LT(later, busy / 100.0);
}

TEST(EwmaRate, ZeroBeforeAnyObservation) {
  const EwmaRate rate(100.0);
  EXPECT_EQ(rate.rate(500), 0.0);
}

TEST(Entropy, UniformIsLogN) {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  for (std::uint32_t i = 0; i < 8; ++i) counts[i] = 100;
  EXPECT_NEAR(shannon_entropy(counts), 3.0, 1e-12);
}

TEST(Entropy, SingleSourceIsZero) {
  std::unordered_map<std::uint32_t, std::uint64_t> counts{{42, 1000}};
  EXPECT_EQ(shannon_entropy(counts), 0.0);
}

TEST(Entropy, EmptyIsZero) {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  EXPECT_EQ(shannon_entropy(counts), 0.0);
}

}  // namespace
}  // namespace ddpm::netsim
