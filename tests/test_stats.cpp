#include "netsim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ddpm::netsim {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptyIsIdentity) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(Histogram, BinsAndBounds) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);  // underflow
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);  // overflow (hi-exclusive)
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.bin(9), 1u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(double(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.1), 10.0, 1.5);
}

TEST(Histogram, QuantileOnEmptyReturnsLowerBound) {
  Histogram h(5.0, 15.0, 10);
  EXPECT_EQ(h.quantile(0.0), 5.0);
  EXPECT_EQ(h.quantile(0.5), 5.0);
  EXPECT_EQ(h.quantile(1.0), 5.0);
}

TEST(Histogram, QuantileOnSingleSampleStaysInItsBin) {
  Histogram h(0.0, 10.0, 10);
  h.add(7.3);
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_GE(h.quantile(q), 7.0);
    EXPECT_LE(h.quantile(q), 8.0);
  }
}

TEST(Histogram, QuantileAllUnderflowReturnsLo) {
  Histogram h(10.0, 20.0, 5);
  h.add(1.0);
  h.add(2.0);
  EXPECT_EQ(h.quantile(0.5), 10.0);
}

TEST(Histogram, QuantileAllOverflowReturnsHi) {
  Histogram h(0.0, 10.0, 5);
  h.add(50.0);
  h.add(60.0);
  EXPECT_EQ(h.quantile(0.5), 10.0);
}

TEST(RunningStat, MergeDisjointRanges) {
  // Two accumulators over non-overlapping value ranges — the shape produced
  // by per-replication snapshots that are merged serially afterwards.
  RunningStat low, high, all;
  for (int i = 0; i < 50; ++i) {
    low.add(double(i));
    all.add(double(i));
  }
  for (int i = 1000; i < 1050; ++i) {
    high.add(double(i));
    all.add(double(i));
  }
  low.merge(high);
  EXPECT_EQ(low.count(), all.count());
  EXPECT_NEAR(low.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(low.variance(), all.variance(), 1e-6);
  EXPECT_EQ(low.min(), 0.0);
  EXPECT_EQ(low.max(), 1049.0);
  EXPECT_EQ(low.sum(), all.sum());
}

TEST(Histogram, ToStringProducesRows) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(double(i % 10));
  const std::string s = h.to_string();
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(EwmaRate, ConvergesToSteadyRate) {
  EwmaRate rate(1000.0);
  // One event every 10 ticks -> rate 0.1.
  for (std::uint64_t t = 0; t < 100000; t += 10) rate.observe(t);
  EXPECT_NEAR(rate.rate(100000), 0.1, 0.02);
}

TEST(EwmaRate, DecaysAfterTrafficStops) {
  EwmaRate rate(100.0);
  for (std::uint64_t t = 0; t < 1000; ++t) rate.observe(t);
  const double busy = rate.rate(1000);
  const double later = rate.rate(2000);
  EXPECT_GT(busy, 0.5);
  EXPECT_LT(later, busy / 100.0);
}

TEST(EwmaRate, ZeroBeforeAnyObservation) {
  const EwmaRate rate(100.0);
  EXPECT_EQ(rate.rate(500), 0.0);
}

TEST(EwmaRate, ZeroTimeDeltaAccumulatesWithoutDecay) {
  EwmaRate rate(100.0);
  rate.observe(50);
  const double one = rate.rate(50);
  // Same-tick bursts must add weight without decaying the estimate.
  rate.observe(50);
  rate.observe(50);
  EXPECT_NEAR(rate.rate(50), 3.0 * one, 1e-12);
}

TEST(EwmaRate, NegativeTimeDeltaDoesNotResetEstimate) {
  EwmaRate warm(100.0), disordered(100.0);
  for (std::uint64_t t = 0; t < 1000; t += 10) {
    warm.observe(t);
    disordered.observe(t);
  }
  // An out-of-order timestamp would wrap the unsigned subtraction to ~2^64
  // ticks and decay the estimate to zero; it must behave like dt == 0.
  disordered.observe(500);
  EXPECT_GT(disordered.rate(990), warm.rate(990));
  EXPECT_NEAR(disordered.rate(990), warm.rate(990),
              2.0 * std::log(2.0) / 100.0);
  // The clock must not move backwards either: a later reading still decays
  // from tick 990, not from 500.
  EXPECT_LT(disordered.rate(2000), disordered.rate(990) / 100.0);
}

TEST(EwmaRate, QueryBeforeLastObservationClampsToZeroDelta) {
  EwmaRate rate(100.0);
  rate.observe(1000);
  EXPECT_EQ(rate.rate(999), rate.rate(1000));
}

TEST(Entropy, UniformIsLogN) {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  for (std::uint32_t i = 0; i < 8; ++i) counts[i] = 100;
  EXPECT_NEAR(shannon_entropy(counts), 3.0, 1e-12);
}

TEST(Entropy, SingleSourceIsZero) {
  std::unordered_map<std::uint32_t, std::uint64_t> counts{{42, 1000}};
  EXPECT_EQ(shannon_entropy(counts), 0.0);
}

TEST(Entropy, EmptyIsZero) {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  EXPECT_EQ(shannon_entropy(counts), 0.0);
}

}  // namespace
}  // namespace ddpm::netsim
