#include "core/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace ddpm::core {
namespace {

TEST(ParallelRunner, ZeroJobsMeansOne) {
  ParallelRunner pool(0);
  EXPECT_EQ(pool.jobs(), 1u);
}

TEST(ParallelRunner, VisitsEveryIndexExactlyOnce) {
  for (std::size_t jobs : {1u, 2u, 4u, 7u}) {
    ParallelRunner pool(jobs);
    constexpr std::size_t kN = 500;
    std::vector<std::atomic<int>> hits(kN);
    pool.for_each_index(kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelRunner, MapReturnsResultsInIndexOrder) {
  ParallelRunner pool(4);
  const auto out =
      pool.map<std::size_t>(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, FewerItemsThanJobs) {
  ParallelRunner pool(8);
  const auto out = pool.map<int>(3, [](std::size_t i) { return int(i) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelRunner, ZeroItemsIsANoop) {
  ParallelRunner pool(4);
  int calls = 0;
  pool.for_each_index(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(pool.map<int>(0, [](std::size_t) { return 0; }).empty());
}

TEST(ParallelRunner, ParallelMatchesSerial) {
  // The whole point of the runner: identical results regardless of jobs.
  auto work = [](std::size_t i) {
    // A little arithmetic so the units take unequal time.
    std::uint64_t x = i + 1;
    for (std::size_t k = 0; k < (i % 97) * 50; ++k) x = x * 6364136223846793005ull + 1;
    return x;
  };
  ParallelRunner serial(1);
  ParallelRunner parallel(4);
  const auto a = serial.map<std::uint64_t>(300, work);
  const auto b = parallel.map<std::uint64_t>(300, work);
  EXPECT_EQ(a, b);
}

TEST(ParallelRunner, ExceptionPropagatesToCaller) {
  ParallelRunner pool(4);
  try {
    pool.for_each_index(64, [](std::size_t i) {
      if (i == 17) throw std::runtime_error("unit 17 failed");
    });
    FAIL() << "expected the worker exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "unit 17 failed");
  }
}

TEST(ParallelRunner, UsableAfterException) {
  ParallelRunner pool(2);
  EXPECT_THROW(pool.for_each_index(8,
                                   [](std::size_t) {
                                     throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  std::atomic<int> sum{0};
  pool.for_each_index(10, [&](std::size_t i) {
    sum.fetch_add(int(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45);
}

}  // namespace
}  // namespace ddpm::core
