// Randomized robustness tests: hostile or random inputs must never crash,
// corrupt state, or violate documented invariants. Reference-model checks
// pin the event queue against std::multimap.
#include <gtest/gtest.h>

#include <map>

#include <sstream>

#include "hybrid/hybrid.hpp"
#include "indirect/port_stamp.hpp"
#include "irregular/irregular.hpp"
#include "marking/ddpm.hpp"
#include "netsim/event_queue.hpp"
#include "netsim/rng.hpp"
#include "packet/ip_header.hpp"
#include "packet/marking_field.hpp"
#include "topology/factory.hpp"
#include "trace/trace.hpp"

namespace ddpm {
namespace {

TEST(Fuzz, IpHeaderParseNeverCrashesOnRandomBytes) {
  netsim::Rng rng(1);
  int parsed = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    std::array<std::uint8_t, pkt::IpHeader::kWireSize> wire;
    for (auto& b : wire) b = std::uint8_t(rng.next_u64());
    try {
      const auto h = pkt::IpHeader::parse(wire);
      ++parsed;
      // Anything that parses must re-serialize to valid wire format.
      EXPECT_NO_THROW(pkt::IpHeader::parse(h.serialize()));
    } catch (const std::invalid_argument&) {
      // expected for almost all random byte strings
    }
  }
  // Random bytes essentially never carry a valid version + checksum.
  EXPECT_LT(parsed, 10);
}

TEST(Fuzz, IpHeaderRoundTripRandomFields) {
  netsim::Rng rng(2);
  for (int trial = 0; trial < 5000; ++trial) {
    pkt::IpHeader h(pkt::Ipv4Address(rng.next_u64()),
                    pkt::Ipv4Address(rng.next_u64()),
                    rng.next_bool(0.5) ? pkt::IpProto::kTcp
                                       : pkt::IpProto::kUdp,
                    std::uint16_t(rng.next_below(1480)));
    h.set_identification(std::uint16_t(rng.next_u64()));
    h.set_ttl(std::uint8_t(rng.next_u64()));
    const auto parsed = pkt::IpHeader::parse(h.serialize());
    EXPECT_EQ(parsed.source(), h.source());
    EXPECT_EQ(parsed.destination(), h.destination());
    EXPECT_EQ(parsed.identification(), h.identification());
    EXPECT_EQ(parsed.ttl(), h.ttl());
    EXPECT_EQ(parsed.total_length(), h.total_length());
  }
}

TEST(Fuzz, EventQueueMatchesReferenceModel) {
  netsim::EventQueue queue;
  std::multimap<std::pair<netsim::SimTime, std::uint64_t>, int> reference;
  std::map<netsim::EventId, decltype(reference)::iterator> live;
  netsim::Rng rng(3);
  std::uint64_t seq = 0;
  int fired_total = 0;
  std::vector<int> fired;
  for (int op = 0; op < 20000; ++op) {
    const auto choice = rng.next_below(10);
    if (choice < 5) {  // schedule
      // Offset from the monotonicity watermark: the queue contracts that no
      // event lands before the most recently popped instant.
      const netsim::SimTime when = queue.last_popped_time() + rng.next_below(1000);
      const int tag = op;
      const auto id = queue.schedule(when, [&fired, tag] { fired.push_back(tag); });
      live[id] = reference.emplace(std::make_pair(when, seq++), tag);
    } else if (choice < 7 && !live.empty()) {  // cancel a random live event
      auto it = live.begin();
      std::advance(it, long(rng.next_below(live.size())));
      EXPECT_TRUE(queue.cancel(it->first));
      reference.erase(it->second);
      live.erase(it);
    } else if (!queue.empty()) {  // pop
      ASSERT_FALSE(reference.empty());
      const auto expected = reference.begin();
      EXPECT_EQ(queue.next_time(), expected->first.first);
      auto [when, action] = queue.pop();
      action();
      ++fired_total;
      ASSERT_FALSE(fired.empty());
      EXPECT_EQ(fired.back(), expected->second);
      // Remove from live map too.
      for (auto it = live.begin(); it != live.end(); ++it) {
        if (it->second == expected) {
          live.erase(it);
          break;
        }
      }
      reference.erase(expected);
    }
  }
  EXPECT_GT(fired_total, 1000);
}

TEST(Fuzz, MarkingFieldSlicesNeverInterfere) {
  // Random disjoint slices written in random order must read back intact.
  netsim::Rng rng(4);
  for (int trial = 0; trial < 5000; ++trial) {
    // Partition 16 bits into 1-4 random slices.
    std::vector<pkt::FieldSlice> slices;
    unsigned offset = 0;
    while (offset < 16) {
      const unsigned width =
          1 + unsigned(rng.next_below(std::min(16u - offset, 6u)));
      slices.push_back({offset, width});
      offset += width;
    }
    std::vector<std::uint16_t> values(slices.size());
    std::uint16_t field = std::uint16_t(rng.next_u64());
    // Write in shuffled order.
    for (std::size_t k = slices.size(); k-- > 0;) {
      const std::size_t i = rng.next_below(slices.size());
      values[i] = std::uint16_t(rng.next_below(1u << slices[i].width));
      field = pkt::write_unsigned(field, slices[i], values[i]);
    }
    // Everything written must read back (unwritten slices unspecified).
    for (std::size_t i = 0; i < slices.size(); ++i) {
      // Only check slices we know were last written with values[i]; since
      // each index may be written several times, re-write then check all.
      field = pkt::write_unsigned(field, slices[i], values[i]);
    }
    for (std::size_t i = 0; i < slices.size(); ++i) {
      EXPECT_EQ(pkt::read_unsigned(field, slices[i]), values[i]);
    }
  }
}

TEST(Fuzz, DdpmIdentifierSafeOnRandomFields) {
  // Random (possibly hostile) marking fields: identify() either names an
  // in-range node or declines; it must never throw or return garbage ids.
  for (const char* spec : {"mesh:6x6", "torus:8x8", "hypercube:7",
                           "mesh:3x5x4"}) {
    const auto topo = topo::make_topology(spec);
    mark::DdpmIdentifier identifier(*topo);
    netsim::Rng rng(5);
    for (int trial = 0; trial < 20000; ++trial) {
      const auto victim = topo::NodeId(rng.next_below(topo->num_nodes()));
      const auto field = std::uint16_t(rng.next_u64());
      const auto named = identifier.identify(victim, field);
      if (named) {
        EXPECT_LT(*named, topo->num_nodes());
      }
    }
  }
}

TEST(Fuzz, DdpmSchemeSurvivesHostileFieldsMidRoute) {
  // A scheme fed arbitrary field values (tampering) must keep working:
  // saturating arithmetic, never throwing.
  const auto topo = topo::make_topology("mesh:6x6");
  mark::DdpmScheme scheme(*topo);
  netsim::Rng rng(6);
  pkt::Packet p;
  for (int trial = 0; trial < 20000; ++trial) {
    p.set_marking_field(std::uint16_t(rng.next_u64()));
    const auto a = topo::NodeId(rng.next_below(topo->num_nodes()));
    const auto neighbors = topo->neighbors(a);
    const auto b = neighbors[rng.next_below(neighbors.size())];
    EXPECT_NO_THROW(scheme.on_forward(p, a, b));
  }
}

TEST(Fuzz, PortStampIdentifySafeOnRandomFields) {
  indirect::Butterfly net(3, 3);  // non-power-of-two radix: dead code points
  indirect::PortStampScheme scheme(net);
  netsim::Rng rng(7);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto field = std::uint16_t(rng.next_u64());
    const auto named = scheme.identify(field);
    if (named) {
      EXPECT_LT(*named, net.num_terminals());
    }
  }
}

TEST(Fuzz, IrregularTopologiesAlwaysFullyRoutable) {
  // Random graph parameters: up*/down* must route every pair on every
  // instance (deadlock-free routability is a theorem; this hunts for
  // implementation gaps in the orientation/state-graph code).
  netsim::Rng rng(9);
  for (int trial = 0; trial < 15; ++trial) {
    const auto nodes = irregular::NodeId(8 + rng.next_below(40));
    const auto max_extra =
        std::size_t(nodes) * (nodes - 1) / 2 - (nodes - 1);
    const auto extra = std::size_t(rng.next_below(
        std::min<std::size_t>(max_extra + 1, std::size_t(nodes) * 2)));
    irregular::IrregularTopology topo(nodes, extra, rng.next_u64());
    irregular::UpDownRouter router(topo);
    for (irregular::NodeId s = 0; s < nodes; ++s) {
      for (irregular::NodeId d = 0; d < nodes; ++d) {
        if (s == d) continue;
        ASSERT_GT(router.legal_distance(s, d), 0)
            << topo.spec() << " " << s << "->" << d;
      }
    }
  }
}

TEST(Fuzz, HybridCodecRandomRoundTrip) {
  hybrid::HybridTopology topo(16, 16);
  hybrid::HierarchicalDdpmCodec codec(topo);
  netsim::Rng rng(10);
  for (int trial = 0; trial < 20000; ++trial) {
    const int local = int(rng.next_below(16));
    const topo::Coord v{int(rng.next_in(-15, 15)), int(rng.next_in(-15, 15))};
    const auto field = codec.encode(local, v);
    EXPECT_EQ(codec.decode_local(field), local);
    EXPECT_EQ(codec.decode_vector(field), v);
  }
}

TEST(Fuzz, TraceParserNeverCrashesOnMangledRows) {
  netsim::Rng rng(11);
  const std::string header = trace::TraceWriter::header();
  for (int trial = 0; trial < 2000; ++trial) {
    std::string line;
    const auto len = rng.next_below(60);
    for (std::uint64_t i = 0; i < len; ++i) {
      const char chars[] = "0123456789,abc -";
      line += chars[rng.next_below(sizeof(chars) - 1)];
    }
    std::istringstream in(header + "\n" + line + "\n");
    try {
      (void)trace::read_trace(in);
    } catch (const std::invalid_argument&) {
      // expected for malformed rows
    }
  }
}

TEST(Fuzz, CodecDecodeEncodeStable) {
  // decode may read any field; encode(decode(f)) must preserve the bits
  // the codec owns (idempotent normalization).
  const auto topo = topo::make_topology("torus:8x8");
  mark::DdpmCodec codec(*topo);
  netsim::Rng rng(8);
  for (int trial = 0; trial < 10000; ++trial) {
    const auto f = std::uint16_t(rng.next_u64());
    const auto v = codec.decode(f);
    const auto f2 = codec.encode(v);
    EXPECT_EQ(codec.decode(f2), v);
  }
}

}  // namespace
}  // namespace ddpm
