#include "topology/hypercube.hpp"

#include <gtest/gtest.h>

#include "topology/graph.hpp"

namespace ddpm::topo {
namespace {

TEST(Hypercube, PaperFigure1cProperties) {
  // Figure 1(c): a 3-cube has degree and diameter n = 3, 8 nodes.
  Hypercube h(3);
  EXPECT_EQ(h.num_nodes(), 8u);
  EXPECT_EQ(h.degree(), 3);
  EXPECT_EQ(h.diameter(), 3);
  EXPECT_EQ(h.num_dims(), 3u);
  EXPECT_EQ(h.dim_size(0), 2);
  EXPECT_EQ(h.spec(), "hypercube:3");
  EXPECT_EQ(h.kind(), TopologyKind::kHypercube);
}

TEST(Hypercube, NeighborsDifferInOneBit) {
  Hypercube h(4);
  for (NodeId id = 0; id < h.num_nodes(); ++id) {
    const auto neighbors = h.neighbors(id);
    EXPECT_EQ(neighbors.size(), 4u);
    for (NodeId n : neighbors) {
      EXPECT_EQ(std::popcount(id ^ n), 1);
    }
  }
}

TEST(Hypercube, PortFlipsBit) {
  Hypercube h(3);
  EXPECT_EQ(h.neighbor(0b000, 0), 0b001u);
  EXPECT_EQ(h.neighbor(0b000, 2), 0b100u);
  EXPECT_EQ(h.neighbor(0b101, 1), 0b111u);
  EXPECT_FALSE(h.neighbor(0, 3).has_value());
}

TEST(Hypercube, CoordIsBinaryDigits) {
  Hypercube h(3);
  EXPECT_EQ(h.coord_of(0b101), (Coord{1, 0, 1}));  // bit d = coordinate d
  EXPECT_EQ(h.id_of(Coord{0, 1, 1}), 0b110u);
  for (NodeId id = 0; id < h.num_nodes(); ++id) {
    EXPECT_EQ(h.id_of(h.coord_of(id)), id);
  }
}

TEST(Hypercube, MinHopsIsHammingDistance) {
  Hypercube h(5);
  EXPECT_EQ(h.min_hops(0b00000, 0b11111), 5);
  EXPECT_EQ(h.min_hops(0b10101, 0b10101), 0);
  EXPECT_EQ(h.min_hops(0b10000, 0b00001), 2);
}

TEST(Hypercube, MinHopsMatchesBfs) {
  Hypercube h(4);
  const auto dist = bfs_distances(h, 5);
  for (NodeId b = 0; b < h.num_nodes(); ++b) {
    EXPECT_EQ(h.min_hops(5, b), dist[b]);
  }
}

TEST(Hypercube, PortToRequiresSingleBitDiff) {
  Hypercube h(3);
  EXPECT_EQ(h.port_to(0b000, 0b010), 1);
  EXPECT_FALSE(h.port_to(0b000, 0b011).has_value());
  EXPECT_FALSE(h.port_to(0b000, 0b000).has_value());
}

TEST(Hypercube, DimensionLimits) {
  EXPECT_THROW(Hypercube(0), std::invalid_argument);
  EXPECT_THROW(Hypercube(17), std::invalid_argument);
  Hypercube h(16);  // Table 3's 65536-node case
  EXPECT_EQ(h.num_nodes(), 65536u);
}

TEST(Hypercube, IdOfRejectsNonBinaryCoord) {
  Hypercube h(3);
  EXPECT_THROW(h.id_of(Coord{0, 2, 0}), std::out_of_range);
  EXPECT_THROW(h.id_of(Coord{0, 0}), std::invalid_argument);
}

TEST(Hypercube, LinksCountIsN2PowNMinus1) {
  Hypercube h(4);  // n * 2^(n-1) = 32
  EXPECT_EQ(h.links().size(), 32u);
}

}  // namespace
}  // namespace ddpm::topo
