#include "routing/valiant.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "marking/ddpm.hpp"
#include "marking/walk.hpp"
#include "topology/factory.hpp"

namespace ddpm::route {
namespace {

TEST(Valiant, DeliversEverywhereOnAllTopologies) {
  for (const char* spec : {"mesh:6x6", "torus:5x5", "hypercube:5"}) {
    const auto topo = topo::make_topology(spec);
    ValiantRouter router(*topo, /*salt=*/7);
    for (topo::NodeId s = 0; s < topo->num_nodes(); s += 3) {
      for (topo::NodeId d = 0; d < topo->num_nodes(); ++d) {
        if (s == d) continue;
        mark::WalkOptions options;
        options.seed = s * 31 + d;
        options.initial_ttl = 255;
        const auto walk =
            mark::walk_packet(*topo, router, nullptr, s, d, options);
        ASSERT_TRUE(walk.delivered()) << spec << " " << s << "->" << d;
        // Two minimal phases: never longer than via the intermediate.
        const auto mid = router.intermediate_for(d);
        EXPECT_LE(walk.hops,
                  topo->min_hops(s, mid) + topo->min_hops(mid, d));
      }
    }
  }
}

TEST(Valiant, PathsVisitTheIntermediateOrShortcut) {
  const auto topo = topo::make_topology("mesh:8x8");
  ValiantRouter router(*topo, 3);
  netsim::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = topo::NodeId(rng.next_below(topo->num_nodes()));
    auto d = topo::NodeId(rng.next_below(topo->num_nodes()));
    if (d == s) d = (d + 1) % topo->num_nodes();
    const auto mid = router.intermediate_for(d);
    mark::WalkOptions options;
    options.seed = rng.next_u64();
    const auto walk = mark::walk_packet(*topo, router, nullptr, s, d, options);
    ASSERT_TRUE(walk.delivered());
    const bool visited_mid =
        std::find(walk.path.begin(), walk.path.end(), mid) != walk.path.end();
    if (!visited_mid) {
      // Shortcut rule fired: some visited node was strictly closer to the
      // destination than the intermediate is.
      bool crossed = false;
      for (auto n : walk.path) {
        crossed = crossed || topo->min_hops(n, d) < topo->min_hops(mid, d);
      }
      EXPECT_TRUE(crossed);
    }
  }
}

TEST(Valiant, ProducesNonMinimalPaths) {
  const auto topo = topo::make_topology("mesh:8x8");
  ValiantRouter router(*topo, 11);
  int longer = 0, total = 0;
  for (topo::NodeId s = 0; s < topo->num_nodes(); s += 5) {
    for (topo::NodeId d = 0; d < topo->num_nodes(); d += 3) {
      if (s == d) continue;
      mark::WalkOptions options;
      options.seed = s + d;
      const auto walk = mark::walk_packet(*topo, router, nullptr, s, d, options);
      ASSERT_TRUE(walk.delivered());
      ++total;
      longer += (walk.hops > topo->min_hops(s, d));
    }
  }
  // The shortcut rule skips the detour whenever the source is already
  // closer to the destination than the intermediate, so 'longer' covers a
  // minority-but-substantial share of pairs.
  EXPECT_GT(longer, total / 8);
}

TEST(Valiant, SaltChangesDetours) {
  const auto topo = topo::make_topology("mesh:8x8");
  ValiantRouter a(*topo, 1), b(*topo, 2);
  int different = 0;
  for (topo::NodeId d = 0; d < topo->num_nodes(); ++d) {
    different += (a.intermediate_for(d) != b.intermediate_for(d));
  }
  EXPECT_GT(different, 32);
}

TEST(Valiant, DdpmSurvivesValiantDetours) {
  // The invariant under the most aggressive legal rerouting: identify the
  // true source despite mandatory non-minimal detours.
  for (const char* spec : {"mesh:8x8", "torus:6x6", "hypercube:6"}) {
    const auto topo = topo::make_topology(spec);
    mark::DdpmScheme scheme(*topo);
    mark::DdpmIdentifier identifier(*topo);
    netsim::Rng rng(17);
    for (int trial = 0; trial < 300; ++trial) {
      ValiantRouter router(*topo, rng.next_u64());  // per-packet detour
      const auto s = topo::NodeId(rng.next_below(topo->num_nodes()));
      auto d = topo::NodeId(rng.next_below(topo->num_nodes()));
      if (d == s) d = (d + 1) % topo->num_nodes();
      mark::WalkOptions options;
      options.seed = rng.next_u64();
      options.initial_ttl = 255;
      options.record_path = false;
      const auto walk = mark::walk_packet(*topo, router, &scheme, s, d, options);
      ASSERT_TRUE(walk.delivered()) << spec;
      EXPECT_EQ(identifier.identify(d, walk.packet.marking_field()), s) << spec;
    }
  }
}

TEST(Valiant, FactoryBuildsIt) {
  const auto topo = topo::make_topology("mesh:4x4");
  EXPECT_EQ(make_router("valiant", *topo)->name(), "valiant");
}

}  // namespace
}  // namespace ddpm::route
