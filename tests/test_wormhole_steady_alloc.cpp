// Zero-allocation steady-state gate for the wormhole hot loop.
//
// The static hot-path rules (tools/ddpm_analyze.py, hot-no-alloc) prove the
// absence of allocation *lexically*; this test proves it *dynamically*: a
// counting global operator new observes a 200-cycle steady-state window of
// WormholeNetwork::step() on a loaded mesh:8x8 and must see zero calls.
// Frees are not counted — delivered packets may release their shared state
// inside the window; only acquiring memory is a hot-path violation.
#include "wormhole/wormhole.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "marking/ddpm.hpp"
#include "netsim/simulator.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"
#include "wormhole/wheel_runner.hpp"

namespace {

// Interposer state. Plain atomics: the simulator is single-threaded, but
// gtest internals may touch the allocator from other threads in other
// configurations, and relaxed atomics make the gate race-free either way.
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};

inline void note_alloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_malloc(std::size_t size) {
  note_alloc();
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* checked_aligned(std::size_t size, std::size_t align) {
  note_alloc();
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

// Replaceable global allocation functions ([new.delete]): every acquiring
// form funnels through the counter; every releasing form stays silent.
void* operator new(std::size_t size) { return checked_malloc(size); }
void* operator new[](std::size_t size) { return checked_malloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return checked_aligned(size, std::size_t(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return checked_aligned(size, std::size_t(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ddpm::wormhole {
namespace {

pkt::Packet make_packet(NodeId src, NodeId dst, std::uint32_t payload = 60) {
  pkt::Packet p;
  p.header = pkt::IpHeader(src + 1, dst + 1, pkt::IpProto::kUdp,
                           std::uint16_t(payload));
  p.true_source = src;
  p.dest_node = dst;
  p.payload_bytes = payload;
  return p;
}

TEST(WormholeSteadyAlloc, StepIsAllocationFreeInSteadyState) {
  const auto topo = topo::make_topology("mesh:8x8");
  const auto router = route::make_router("adaptive", *topo);
  mark::DdpmScheme scheme(*topo);
  WormholeNetwork net(*topo, *router, &scheme, {});
  ASSERT_TRUE(net.using_route_tables())
      << "fast path not engaged; the window would measure the fallback";
  ASSERT_TRUE(net.using_soa_engine())
      << "SoA engine not engaged; the window would measure the reference";

  // The hook must itself be allocation-free: count deliveries, nothing more.
  std::size_t delivered_in_window = 0;
  net.set_delivery_hook(
      [&delivered_in_window](pkt::Packet&&, NodeId) { ++delivered_in_window; });

  // Load the injection queues up front (inject() may allocate: it is the
  // cold boundary). Random many-to-many traffic keeps every switch busy.
  netsim::Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    const auto s = NodeId(rng.next_below(topo->num_nodes()));
    auto d = NodeId(rng.next_below(topo->num_nodes()));
    if (d == s) d = (d + 1) % topo->num_nodes();
    net.inject(make_packet(s, d), s);
  }

  // Warm-up: staged/rr/buffer structures reach steady occupancy.
  net.run(500);
  ASSERT_GT(net.flits_in_flight(), 0u) << "warm-up drained the network";
  const std::uint64_t delivered_before = net.delivered();

  delivered_in_window = 0;  // hook also saw warm-up deliveries
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  net.run(200);
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "WormholeNetwork::step() allocated during the steady-state window";
  // The window must have been real work, not a drained no-op.
  EXPECT_GT(net.flits_in_flight(), 0u) << "window was not steady state";
  EXPECT_GT(net.delivered(), delivered_before)
      << "no packet completed inside the window";
  EXPECT_EQ(net.delivered() - delivered_before, delivered_in_window);

  ASSERT_TRUE(net.drain(2000000));
}

// Same gate with the link clock living on the simulation kernel's calendar
// wheel (wormhole/wheel_runner.hpp): the periodic tick's schedule/pop must
// stay on the wheel's O(1) bucket path and acquire no memory either — the
// full event-driven stack, SoA engine plus wheel, is allocation-free in
// steady state.
TEST(WormholeSteadyAlloc, WheelDrivenStepIsAllocationFreeInSteadyState) {
  const auto topo = topo::make_topology("mesh:8x8");
  const auto router = route::make_router("adaptive", *topo);
  mark::DdpmScheme scheme(*topo);
  WormholeNetwork net(*topo, *router, &scheme, {});
  ASSERT_TRUE(net.using_soa_engine());

  // Heavier load than the direct-run gate: the warm-up must cover a full
  // wheel revolution (1024 ticks at period 1) without draining.
  netsim::Rng rng(13);
  for (int i = 0; i < 12000; ++i) {
    const auto s = NodeId(rng.next_below(topo->num_nodes()));
    auto d = NodeId(rng.next_below(topo->num_nodes()));
    if (d == s) d = (d + 1) % topo->num_nodes();
    net.inject(make_packet(s, d), s);
  }

  netsim::Simulator sim;
  // Warm-up long enough that the tick's bucket cycle has touched every
  // wheel bucket once (window = 1024 at tick period 1), so the window
  // below exercises only recycled storage.
  run_on_wheel(sim, net, 1500, 1);
  ASSERT_GT(net.flits_in_flight(), 0u) << "warm-up drained the network";
  const std::uint64_t delivered_before = net.delivered();

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  run_on_wheel(sim, net, 200, 1);
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "wheel-driven step() acquired memory during the steady window";
  EXPECT_GT(net.flits_in_flight(), 0u) << "window was not steady state";
  EXPECT_GT(net.delivered(), delivered_before)
      << "no packet completed inside the window";
  ASSERT_TRUE(net.drain(2000000));
}

}  // namespace
}  // namespace ddpm::wormhole
