#include "core/report_json.hpp"

#include <gtest/gtest.h>

namespace ddpm::core {
namespace {

ScenarioConfig small_scenario() {
  ScenarioConfig config;
  config.cluster.topology = "mesh:4x4";
  config.cluster.benign_rate_per_node = 0.0002;
  config.cluster.seed = 5;
  config.identifier = "ddpm";
  config.detect_rate_threshold = 0.002;
  config.attack.kind = attack::AttackKind::kUdpFlood;
  config.attack.victim = 15;
  config.attack.zombies = {2, 7};
  config.attack.rate_per_zombie = 0.005;
  config.attack.start_time = 10000;
  config.duration = 150000;
  return config;
}

/// Tiny structural validator: balanced braces/brackets outside strings,
/// no trailing commas.
void expect_valid_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  char prev_significant = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        EXPECT_NE(prev_significant, ',') << "trailing comma before " << c;
        --depth;
        EXPECT_GE(depth, 0);
        break;
      default: break;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) prev_significant = c;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(ReportJson, WellFormedAndComplete) {
  auto config = small_scenario();
  SourceIdentificationSystem system(config);
  const ScenarioReport report = system.run();
  const std::string json = to_json(config, report);
  expect_valid_json(json);
  for (const char* key :
       {"\"config\"", "\"report\"", "\"topology\"", "\"mesh:4x4\"",
        "\"zombies\"", "\"metrics\"", "\"injected_attack\"",
        "\"identified_sources\"", "\"true_positives\"",
        "\"detection_time\"", "\"identifications\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ReportJson, ReportOnlyVariant) {
  auto config = small_scenario();
  config.duration = 5000;  // ends before the attack starts: no detection
  SourceIdentificationSystem system(config);
  const ScenarioReport report = system.run();
  const std::string json = to_json(report);
  expect_valid_json(json);
  EXPECT_NE(json.find("\"detection_time\": \"never\""), std::string::npos);
  EXPECT_EQ(json.find("\"config\""), std::string::npos);
}

TEST(ReportJson, NumbersAreBare) {
  auto config = small_scenario();
  SourceIdentificationSystem system(config);
  const auto json = to_json(system.run());
  // A numeric field must not be quoted.
  EXPECT_NE(json.find("\"true_positives\": 2"), std::string::npos) << json;
}

}  // namespace
}  // namespace ddpm::core
