#include "routing/turn_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "marking/walk.hpp"
#include "topology/mesh.hpp"

namespace ddpm::route {
namespace {

using mark::walk_packet;
using mark::WalkOutcome;
using topo::Coord;

class TurnModelFixture : public ::testing::Test {
 protected:
  topo::Mesh mesh_{{4, 4}};
};

TEST_F(TurnModelFixture, RequiresTwoDMesh) {
  topo::Mesh mesh3d({3, 3, 3});
  EXPECT_THROW(TurnModelRouter(mesh3d, TurnModel::kWestFirst),
               std::invalid_argument);
  topo::Mesh mesh1d({8});
  EXPECT_THROW(TurnModelRouter(mesh1d, TurnModel::kNorthLast),
               std::invalid_argument);
}

TEST_F(TurnModelFixture, WestFirstGoesWestExclusivelyWhileNeeded) {
  TurnModelRouter router(mesh_, TurnModel::kWestFirst);
  // From (3,0) to (0,3): dx = -3, so only west until x matches.
  const auto from = mesh_.id_of(Coord{3, 0});
  const auto cand = router.candidates(from, mesh_.id_of(Coord{0, 3}), kLocalPort);
  EXPECT_EQ(cand, (route::PortList{TurnModelRouter::kWest}));
  // And no fallback whatsoever while westbound.
  EXPECT_TRUE(router
                  .fallback_candidates(from, mesh_.id_of(Coord{0, 3}),
                                       kLocalPort)
                  .empty());
}

TEST_F(TurnModelFixture, WestFirstAdaptiveAfterWestDone) {
  TurnModelRouter router(mesh_, TurnModel::kWestFirst);
  // From (0,0) to (2,2): dx > 0, dy > 0 -> east and south both offered.
  const auto cand = router.candidates(mesh_.id_of(Coord{0, 0}),
                                      mesh_.id_of(Coord{2, 2}), kLocalPort);
  EXPECT_EQ(cand.size(), 2u);
  EXPECT_NE(std::find(cand.begin(), cand.end(), TurnModelRouter::kEast),
            cand.end());
  EXPECT_NE(std::find(cand.begin(), cand.end(), TurnModelRouter::kSouth),
            cand.end());
}

TEST_F(TurnModelFixture, WestFirstNeverTurnsIntoWestAfterOtherDirection) {
  // Exhaustive: from any state with dx >= 0, west is never a candidate and
  // never a fallback (the prohibited N->W / S->W turns can thus never
  // happen, whatever the link state).
  TurnModelRouter router(mesh_, TurnModel::kWestFirst);
  for (topo::NodeId cur = 0; cur < mesh_.num_nodes(); ++cur) {
    for (topo::NodeId dst = 0; dst < mesh_.num_nodes(); ++dst) {
      if (cur == dst) continue;
      if (mesh_.coord_of(dst)[0] < mesh_.coord_of(cur)[0]) continue;  // dx<0
      for (Port arrived : {kLocalPort, 0, 1, 2, 3}) {
        for (Port p : router.candidates(cur, dst, arrived)) {
          EXPECT_NE(p, TurnModelRouter::kWest);
        }
        for (Port p : router.fallback_candidates(cur, dst, arrived)) {
          EXPECT_NE(p, TurnModelRouter::kWest);
        }
      }
    }
  }
}

TEST_F(TurnModelFixture, Figure2bWestFirstSurvivesFailedEastLinks) {
  // Figure 2(b): east links out of the sources fail; XY cannot route, but
  // west-first detours north/south first and then heads east.
  TurnModelRouter router(mesh_, TurnModel::kWestFirst);
  topo::LinkFailureSet failures;
  const auto s1 = mesh_.id_of(Coord{0, 1});
  const auto s2 = mesh_.id_of(Coord{0, 2});
  const auto d = mesh_.id_of(Coord{3, 1});
  failures.fail(s1, mesh_.id_of(Coord{1, 1}));
  failures.fail(s2, mesh_.id_of(Coord{1, 2}));
  mark::WalkOptions options;
  options.failures = &failures;
  for (auto src : {s1, s2}) {
    const auto walk = walk_packet(mesh_, router, nullptr, src, d, options);
    EXPECT_TRUE(walk.delivered()) << "src " << src;
  }
}

TEST_F(TurnModelFixture, Figure2cWestFirstCannotTurnWestAtTheEnd) {
  // Figure 2(c): every surviving route reaches D from its east neighbor,
  // i.e. requires a final westward turn, which west-first prohibits.
  TurnModelRouter router(mesh_, TurnModel::kWestFirst);
  topo::LinkFailureSet failures;
  const auto d = mesh_.id_of(Coord{2, 1});
  failures.fail(d, mesh_.id_of(Coord{1, 1}));  // west approach
  failures.fail(d, mesh_.id_of(Coord{2, 0}));  // north approach
  failures.fail(d, mesh_.id_of(Coord{2, 2}));  // south approach
  mark::WalkOptions options;
  options.failures = &failures;
  options.initial_ttl = 64;
  const auto src = mesh_.id_of(Coord{0, 1});
  const auto walk = walk_packet(mesh_, router, nullptr, src, d, options);
  EXPECT_NE(walk.outcome, WalkOutcome::kDelivered);
}

TEST_F(TurnModelFixture, NorthLastCommitsOnceHeadingNorth) {
  TurnModelRouter router(mesh_, TurnModel::kNorthLast);
  // Arrived through the south port => heading north => must continue north.
  const auto cur = mesh_.id_of(Coord{1, 1});
  const auto dst = mesh_.id_of(Coord{3, 0});
  const auto cand = router.candidates(cur, dst, TurnModelRouter::kSouth);
  EXPECT_EQ(cand, (route::PortList{TurnModelRouter::kNorth}));
  EXPECT_TRUE(
      router.fallback_candidates(cur, dst, TurnModelRouter::kSouth).empty());
}

TEST_F(TurnModelFixture, NorthLastDelaysNorthUntilXDone) {
  TurnModelRouter router(mesh_, TurnModel::kNorthLast);
  // dx != 0 and dy < 0: north must not be offered yet.
  const auto cand = router.candidates(mesh_.id_of(Coord{0, 2}),
                                      mesh_.id_of(Coord{2, 0}), kLocalPort);
  EXPECT_EQ(cand, (route::PortList{TurnModelRouter::kEast}));
  // Once aligned in x, north is the only productive direction.
  const auto cand2 = router.candidates(mesh_.id_of(Coord{2, 2}),
                                       mesh_.id_of(Coord{2, 0}), kLocalPort);
  EXPECT_EQ(cand2, (route::PortList{TurnModelRouter::kNorth}));
}

TEST_F(TurnModelFixture, NegativeFirstPhases) {
  TurnModelRouter router(mesh_, TurnModel::kNegativeFirst);
  // Negative phase: west and north adaptively.
  const auto cand = router.candidates(mesh_.id_of(Coord{2, 2}),
                                      mesh_.id_of(Coord{0, 0}), kLocalPort);
  EXPECT_EQ(cand.size(), 2u);
  // Positive phase: east/south only; no fallback exists.
  const auto cand2 = router.candidates(mesh_.id_of(Coord{0, 0}),
                                       mesh_.id_of(Coord{2, 2}), kLocalPort);
  EXPECT_EQ(cand2.size(), 2u);
  EXPECT_TRUE(router
                  .fallback_candidates(mesh_.id_of(Coord{0, 0}),
                                       mesh_.id_of(Coord{2, 2}), kLocalPort)
                  .empty());
  // Mixed deltas (dx>0, dy<0): north (negative) first.
  const auto cand3 = router.candidates(mesh_.id_of(Coord{0, 2}),
                                       mesh_.id_of(Coord{2, 0}), kLocalPort);
  EXPECT_EQ(cand3, (route::PortList{TurnModelRouter::kNorth}));
}

class TurnModelDelivery
    : public ::testing::TestWithParam<TurnModel> {};

TEST_P(TurnModelDelivery, DeliversMinimallyOnHealthyMesh) {
  topo::Mesh mesh({5, 5});
  TurnModelRouter router(mesh, GetParam());
  EXPECT_FALSE(router.is_deterministic());
  for (topo::NodeId s = 0; s < mesh.num_nodes(); ++s) {
    for (topo::NodeId d = 0; d < mesh.num_nodes(); ++d) {
      if (s == d) continue;
      mark::WalkOptions options;
      options.seed = s * 100 + d;
      const auto walk = walk_packet(mesh, router, nullptr, s, d, options);
      ASSERT_TRUE(walk.delivered()) << to_string(GetParam());
      EXPECT_EQ(walk.hops, mesh.min_hops(s, d)) << to_string(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, TurnModelDelivery,
                         ::testing::Values(TurnModel::kWestFirst,
                                           TurnModel::kNorthLast,
                                           TurnModel::kNegativeFirst));

}  // namespace
}  // namespace ddpm::route
