#include "wormhole/wormhole.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "telemetry/registry.hpp"

#include "topology/coord.hpp"

#include "marking/ddpm.hpp"
#include "topology/factory.hpp"

namespace ddpm::wormhole {
namespace {

pkt::Packet make_packet(const topo::Topology&, NodeId src, NodeId dst,
                        std::uint32_t payload = 60) {
  pkt::Packet p;
  p.header = pkt::IpHeader(src + 1, dst + 1, pkt::IpProto::kUdp,
                           std::uint16_t(payload));
  p.true_source = src;
  p.dest_node = dst;
  p.payload_bytes = payload;
  return p;
}

TEST(Wormhole, SinglePacketDelivered) {
  const auto topo = topo::make_topology("mesh:4x4");
  const auto router = route::make_router("adaptive", *topo);
  WormholeNetwork net(*topo, *router, nullptr, {});
  std::vector<NodeId> delivered_at;
  pkt::Packet got;
  net.set_delivery_hook([&](pkt::Packet&& p, NodeId at) {
    delivered_at.push_back(at);
    got = std::move(p);
  });
  net.inject(make_packet(*topo, 0, 15), 0);
  ASSERT_TRUE(net.drain(10000));
  ASSERT_EQ(delivered_at.size(), 1u);
  EXPECT_EQ(delivered_at.front(), 15u);
  EXPECT_EQ(got.hops, 6u);  // minimal path on the 4x4 mesh corner pair
  EXPECT_EQ(net.delivered(), 1u);
  EXPECT_EQ(net.flits_in_flight(), 0u);
}

TEST(Wormhole, FlitSegmentation) {
  // 60-byte payload + 20-byte header = 80 bytes = 5 flits of 16.
  const auto topo = topo::make_topology("mesh:4x4");
  const auto router = route::make_router("dor", *topo);
  WormholeNetwork net(*topo, *router, nullptr, {});
  net.inject(make_packet(*topo, 0, 1, 60), 0);
  EXPECT_EQ(net.flits_in_flight(), 5u);
  ASSERT_TRUE(net.drain(10000));
}

TEST(Wormhole, LatencyScalesWithDistanceAndLength) {
  const auto topo = topo::make_topology("mesh:8x8");
  const auto router = route::make_router("dor", *topo);
  WormholeNetwork net(*topo, *router, nullptr, {});
  std::map<NodeId, std::uint64_t> arrival;
  net.set_delivery_hook([&](pkt::Packet&& p, NodeId at) {
    arrival[at] = p.delivered_at;
  });
  net.inject(make_packet(*topo, 0, 1), 0);    // 1 hop
  net.inject(make_packet(*topo, 0, 63), 0);   // 14 hops
  ASSERT_TRUE(net.drain(100000));
  ASSERT_EQ(arrival.size(), 2u);
  EXPECT_LT(arrival[1], arrival[63]);
  // Wormhole pipelining: latency ~ hops + flits, far below hops * flits.
  EXPECT_LT(arrival[63], 200u);
}

TEST(Wormhole, AllPairsDeliveredOnEveryTopologyAndRouter) {
  for (const char* spec : {"mesh:4x4", "torus:4x4", "hypercube:4"}) {
    const auto topo = topo::make_topology(spec);
    for (const char* router_name : {"dor", "adaptive"}) {
      const auto router = route::make_router(router_name, *topo);
      WormholeNetwork net(*topo, *router, nullptr, {});
      std::uint64_t expected = 0;
      for (NodeId s = 0; s < topo->num_nodes(); ++s) {
        for (NodeId d = 0; d < topo->num_nodes(); ++d) {
          if (s == d) continue;
          net.inject(make_packet(*topo, s, d), s);
          ++expected;
        }
      }
      ASSERT_TRUE(net.drain(2000000)) << spec << " " << router_name
                                      << " did not drain (deadlock?)";
      EXPECT_EQ(net.delivered(), expected) << spec << " " << router_name;
      EXPECT_EQ(net.dropped_ttl(), 0u);
    }
  }
}

TEST(Wormhole, HeavyHotspotLoadDrainsOnTorus) {
  // Deadlock stress: everyone floods one node on a torus (the topology
  // that needs the dateline escape discipline), tiny buffers.
  const auto topo = topo::make_topology("torus:4x4");
  const auto router = route::make_router("adaptive", *topo);
  WormholeConfig config;
  config.buffer_flits = 2;
  config.adaptive_vcs = 1;
  WormholeNetwork net(*topo, *router, nullptr, config);
  std::uint64_t expected = 0;
  for (int round = 0; round < 20; ++round) {
    for (NodeId s = 0; s < topo->num_nodes(); ++s) {
      if (s == 5) continue;
      net.inject(make_packet(*topo, s, 5), s);
      ++expected;
    }
  }
  ASSERT_TRUE(net.drain(3000000)) << "possible deadlock";
  EXPECT_EQ(net.delivered(), expected);
}

TEST(Wormhole, WithoutEscapeVcsTheTorusDeadlocks) {
  // Negative control: the same hotspot stress that drains with the Duato
  // escape layer wedges without it — cyclic channel dependencies around
  // the torus rings. This is the experiment that proves the escape VCs
  // are load-bearing, not decorative.
  const auto topo = topo::make_topology("torus:4x4");
  const auto router = route::make_router("adaptive", *topo);
  WormholeConfig config;
  config.buffer_flits = 2;
  config.adaptive_vcs = 1;
  config.disable_escape = true;
  WormholeNetwork net(*topo, *router, nullptr, config);
  // Ring-circular traffic: every node sends halfway around its row and
  // column ring. The tie-break sends all of it the same way round, and
  // 200-byte packets (14 flits vs 2-flit buffers) span many channels —
  // the classic wormhole hold-and-wait cycle.
  std::uint64_t injected = 0;
  for (int round = 0; round < 30; ++round) {
    for (NodeId s = 0; s < topo->num_nodes(); ++s) {
      const auto c = topo->coord_of(s);
      net.inject(make_packet(*topo, s,
                             topo->id_of(topo::Coord{(c[0] + 2) % 4, c[1]}),
                             200),
                 s);
      net.inject(make_packet(*topo, s,
                             topo->id_of(topo::Coord{c[0], (c[1] + 2) % 4}),
                             200),
                 s);
      injected += 2;
    }
  }
  const bool drained = net.drain(500000);
  EXPECT_FALSE(drained) << "expected a deadlock without escape VCs";
  EXPECT_TRUE(net.deadlocked());
  EXPECT_GT(net.flits_in_flight(), 0u);
  EXPECT_LT(net.delivered(), injected);
}

TEST(Wormhole, SameStressDrainsWithEscapeVcs) {
  const auto topo = topo::make_topology("torus:4x4");
  const auto router = route::make_router("adaptive", *topo);
  WormholeConfig config;
  config.buffer_flits = 2;
  config.adaptive_vcs = 1;
  WormholeNetwork net(*topo, *router, nullptr, config);
  std::uint64_t injected = 0;
  for (int round = 0; round < 30; ++round) {
    for (NodeId s = 0; s < topo->num_nodes(); ++s) {
      const auto c = topo->coord_of(s);
      net.inject(make_packet(*topo, s,
                             topo->id_of(topo::Coord{(c[0] + 2) % 4, c[1]}),
                             200),
                 s);
      net.inject(make_packet(*topo, s,
                             topo->id_of(topo::Coord{c[0], (c[1] + 2) % 4}),
                             200),
                 s);
      injected += 2;
    }
  }
  ASSERT_TRUE(net.drain(3000000));
  EXPECT_EQ(net.delivered(), injected);
  EXPECT_FALSE(net.deadlocked());
}

TEST(Wormhole, DdpmInvariantUnderWormholeSwitching) {
  // The whole point of the substrate: marking behaves identically under
  // realistic switching. Every delivered packet identifies its source.
  for (const char* spec : {"mesh:6x6", "torus:5x5", "hypercube:5"}) {
    const auto topo = topo::make_topology(spec);
    const auto router = route::make_router("adaptive", *topo);
    mark::DdpmScheme scheme(*topo);
    mark::DdpmIdentifier identifier(*topo);
    WormholeNetwork net(*topo, *router, &scheme, {});
    std::uint64_t checked = 0;
    bool all_correct = true;
    net.set_delivery_hook([&](pkt::Packet&& p, NodeId at) {
      ++checked;
      const auto named = identifier.identify(at, p.marking_field());
      all_correct = all_correct && named && *named == p.true_source;
    });
    netsim::Rng rng(2);
    for (int i = 0; i < 500; ++i) {
      const auto s = NodeId(rng.next_below(topo->num_nodes()));
      auto d = NodeId(rng.next_below(topo->num_nodes()));
      if (d == s) d = (d + 1) % topo->num_nodes();
      // Attacker-style: pre-load the marking field; injection resets it.
      auto p = make_packet(*topo, s, d);
      p.set_marking_field(0xffff);
      net.inject(std::move(p), s);
    }
    ASSERT_TRUE(net.drain(1000000)) << spec;
    EXPECT_EQ(checked, 500u) << spec;
    EXPECT_TRUE(all_correct) << spec;
  }
}

TEST(Wormhole, ThreeDimensionalTorusDatelinesHold) {
  // The dateline discipline is per-dimension; a 3-D torus exercises the
  // dimension-change reset path.
  const auto topo = topo::make_topology("torus:3x3x3");
  const auto router = route::make_router("adaptive", *topo);
  WormholeConfig config;
  config.buffer_flits = 2;
  WormholeNetwork net(*topo, *router, nullptr, config);
  std::uint64_t expected = 0;
  for (NodeId s = 0; s < topo->num_nodes(); ++s) {
    for (NodeId d = 0; d < topo->num_nodes(); ++d) {
      if (s == d) continue;
      net.inject(make_packet(*topo, s, d), s);
      ++expected;
    }
  }
  ASSERT_TRUE(net.drain(3000000)) << "possible 3-D dateline deadlock";
  EXPECT_EQ(net.delivered(), expected);
}

TEST(Wormhole, TurnModelRoutersWorkAsTheAdaptiveLayer) {
  // Turn-model candidates feed the adaptive VCs; the DOR escape layer
  // keeps everything deadlock-free regardless.
  const auto topo = topo::make_topology("mesh:4x4");
  for (const char* name : {"west-first", "north-last", "negative-first"}) {
    const auto router = route::make_router(name, *topo);
    mark::DdpmScheme scheme(*topo);
    mark::DdpmIdentifier identifier(*topo);
    WormholeNetwork net(*topo, *router, &scheme, {});
    bool all_correct = true;
    std::uint64_t checked = 0;
    net.set_delivery_hook([&](pkt::Packet&& p, NodeId at) {
      ++checked;
      const auto named = identifier.identify(at, p.marking_field());
      all_correct = all_correct && named && *named == p.true_source;
    });
    std::uint64_t expected = 0;
    for (NodeId s = 0; s < topo->num_nodes(); ++s) {
      for (NodeId d = 0; d < topo->num_nodes(); ++d) {
        if (s == d) continue;
        net.inject(make_packet(*topo, s, d), s);
        ++expected;
      }
    }
    ASSERT_TRUE(net.drain(2000000)) << name;
    EXPECT_EQ(checked, expected) << name;
    EXPECT_TRUE(all_correct) << name;
  }
}

TEST(Wormhole, MarksExactlyOncePerHop) {
  // hops recorded by the wormhole switch must equal the walker's notion:
  // number of links traversed.
  const auto topo = topo::make_topology("mesh:8x8");
  const auto router = route::make_router("dor", *topo);
  mark::DdpmScheme scheme(*topo);
  WormholeNetwork net(*topo, *router, &scheme, {});
  std::uint32_t hops = 0;
  net.set_delivery_hook([&](pkt::Packet&& p, NodeId) { hops = p.hops; });
  net.inject(make_packet(*topo, 0, 63), 0);
  ASSERT_TRUE(net.drain(100000));
  EXPECT_EQ(hops, 14u);
}

TEST(Wormhole, BackpressureLimitsThroughputNotCorrectness) {
  // Saturating injection: many packets from one source through one link.
  const auto topo = topo::make_topology("mesh:4x4");
  const auto router = route::make_router("dor", *topo);
  WormholeConfig config;
  config.buffer_flits = 2;
  WormholeNetwork net(*topo, *router, nullptr, config);
  for (int i = 0; i < 100; ++i) net.inject(make_packet(*topo, 0, 3), 0);
  EXPECT_GT(net.injection_backlog(), 0u);
  ASSERT_TRUE(net.drain(1000000));
  EXPECT_EQ(net.delivered(), 100u);
  EXPECT_EQ(net.injection_backlog(), 0u);
}

TEST(Wormhole, InterleavedFlowsDoNotCorruptPackets) {
  // Two flows crossing the same switch: flit streams must not mix. Check
  // by delivering both packets intact (hops and marking sensible).
  const auto topo = topo::make_topology("mesh:4x4");
  const auto router = route::make_router("dor", *topo);
  mark::DdpmScheme scheme(*topo);
  mark::DdpmIdentifier identifier(*topo);
  WormholeNetwork net(*topo, *router, &scheme, {});
  int correct = 0;
  net.set_delivery_hook([&](pkt::Packet&& p, NodeId at) {
    const auto named = identifier.identify(at, p.marking_field());
    correct += (named && *named == p.true_source);
  });
  // Flows 0->15 and 12->3 share middle links in opposite directions; and
  // 0->12, 3->15 share columns.
  for (int i = 0; i < 25; ++i) {
    net.inject(make_packet(*topo, 0, 15), 0);
    net.inject(make_packet(*topo, 12, 3), 12);
    net.inject(make_packet(*topo, 0, 12), 0);
    net.inject(make_packet(*topo, 3, 15), 3);
  }
  ASSERT_TRUE(net.drain(1000000));
  EXPECT_EQ(correct, 100);
}

// -- route-table byte-identity ---------------------------------------------
// The precomputed tables (escape next hop, adaptive candidate bitmasks,
// neighbor/wrap caches) are an optimization only: every routing decision,
// and therefore every delivered byte, must match the virtual-dispatch
// reference path exactly. Full per-packet evidence: delivery order, hop
// count, delivery cycle, final marking field, and the complete node trace.

struct DeliveryEvidence {
  NodeId at;
  NodeId true_source;
  std::uint32_t hops;
  std::uint64_t delivered_at;
  std::uint16_t marking;
  std::vector<NodeId> trace;

  bool operator==(const DeliveryEvidence&) const = default;
};

std::vector<DeliveryEvidence> run_traced_scenario(
    const char* spec, const char* router_name, bool use_tables,
    bool use_soa = true, std::string* telemetry_csv = nullptr) {
  const auto topo = topo::make_topology(spec);
  const auto router = route::make_router(router_name, *topo);
  mark::DdpmScheme scheme(*topo);
  WormholeConfig config;
  config.use_route_tables = use_tables;
  config.use_soa_engine = use_soa;
  WormholeNetwork net(*topo, *router, &scheme, config);
  EXPECT_EQ(net.using_route_tables(), use_tables);
  EXPECT_EQ(net.using_soa_engine(), use_soa);
  telemetry::Registry registry;
  if (telemetry_csv != nullptr) net.bind_telemetry(&registry);
  std::vector<DeliveryEvidence> evidence;
  net.set_delivery_hook([&](pkt::Packet&& p, NodeId at) {
    evidence.push_back(DeliveryEvidence{at, p.true_source, p.hops,
                                        p.delivered_at, p.marking_field(),
                                        p.trace});
  });
  netsim::Rng rng(17);
  for (int i = 0; i < 400; ++i) {
    const auto s = NodeId(rng.next_below(topo->num_nodes()));
    auto d = NodeId(rng.next_below(topo->num_nodes()));
    if (d == s) d = (d + 1) % topo->num_nodes();
    auto p = make_packet(*topo, s, d);
    p.trace.push_back(s);  // opt into per-hop path tracing
    net.inject(std::move(p), s);
  }
  EXPECT_TRUE(net.drain(2000000)) << spec << " " << router_name
                                  << " tables=" << use_tables
                                  << " soa=" << use_soa;
  EXPECT_EQ(evidence.size(), 400u);
  if (telemetry_csv != nullptr) *telemetry_csv = registry.snapshot().to_csv();
  return evidence;
}

TEST(Wormhole, RouteTablesAreByteIdenticalToVirtualPath) {
  for (const char* spec : {"mesh:8x8", "torus:4x4"}) {
    for (const char* router_name : {"dor", "adaptive"}) {
      const auto fast = run_traced_scenario(spec, router_name, true);
      const auto reference = run_traced_scenario(spec, router_name, false);
      ASSERT_EQ(fast.size(), reference.size()) << spec << " " << router_name;
      for (std::size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(fast[i], reference[i])
            << spec << " " << router_name << " packet " << i << " diverged "
            << "(delivered at " << fast[i].at << " vs " << reference[i].at
            << ", hops " << fast[i].hops << " vs " << reference[i].hops
            << ")";
      }
    }
  }
}

// -- SoA-engine byte-identity ----------------------------------------------
// The structure-of-arrays engine replaces the object-graph inner loop with
// flat control records and occupancy/request bitmasks. Like the route
// tables it is an optimization only: delivery evidence AND the telemetry
// stream (every probe firing, including stall probes on skipped arbitration
// candidates and buffer-depth histogram samples) must match the legacy
// engine exactly — bitmask iteration order is ascending precisely so that
// same-cycle credit visibility and VC-claim ordering replay bit for bit.

TEST(Wormhole, SoaEngineIsByteIdenticalToLegacyPath) {
  for (const char* spec : {"mesh:8x8", "torus:4x4"}) {
    for (const char* router_name : {"dor", "adaptive"}) {
      std::string soa_csv;
      std::string ref_csv;
      const auto soa =
          run_traced_scenario(spec, router_name, true, true, &soa_csv);
      const auto reference =
          run_traced_scenario(spec, router_name, true, false, &ref_csv);
      ASSERT_EQ(soa.size(), reference.size()) << spec << " " << router_name;
      for (std::size_t i = 0; i < soa.size(); ++i) {
        EXPECT_EQ(soa[i], reference[i])
            << spec << " " << router_name << " packet " << i << " diverged "
            << "(delivered at " << soa[i].at << " vs " << reference[i].at
            << ", hops " << soa[i].hops << " vs " << reference[i].hops
            << ")";
      }
      EXPECT_EQ(soa_csv, ref_csv)
          << spec << " " << router_name << " telemetry streams diverged";
    }
  }
}

TEST(Wormhole, SoaEngineIsByteIdenticalOnVirtualRoutingPath) {
  // Cross check: SoA with the route tables off (virtual routing fallback
  // inside soa_allocate) against the fully-legacy engine.
  const auto soa = run_traced_scenario("torus:4x4", "adaptive", false, true);
  const auto reference =
      run_traced_scenario("torus:4x4", "adaptive", false, false);
  ASSERT_EQ(soa.size(), reference.size());
  for (std::size_t i = 0; i < soa.size(); ++i) {
    EXPECT_EQ(soa[i], reference[i]) << "packet " << i << " diverged";
  }
}

TEST(Wormhole, SoaEngineRespectsUnitMaskBudget) {
  // (P+1)*V must fit a 64-bit mask: an adaptive_vcs burst past that budget
  // has to fall back to the legacy engine — and still deliver.
  const auto topo = topo::make_topology("mesh:4x4");
  const auto router = route::make_router("adaptive", *topo);
  WormholeConfig config;
  config.adaptive_vcs = 13;  // (4+1)*(13+1) = 70 units > 64
  WormholeNetwork net(*topo, *router, nullptr, config);
  EXPECT_FALSE(net.using_soa_engine());
  for (int i = 0; i < 50; ++i) net.inject(make_packet(*topo, 0, 15), 0);
  ASSERT_TRUE(net.drain(1000000));
  EXPECT_EQ(net.delivered(), 50u);
}

TEST(Wormhole, RouteTablesRespectNodeBudget) {
  // Over budget -> the network must fall back to the virtual path (and
  // still work) rather than build O(N^2) tables.
  const auto topo = topo::make_topology("mesh:4x4");
  const auto router = route::make_router("adaptive", *topo);
  WormholeConfig config;
  config.route_table_max_nodes = 8;  // below the 16 nodes of mesh:4x4
  WormholeNetwork net(*topo, *router, nullptr, config);
  EXPECT_FALSE(net.using_route_tables());
  net.inject(make_packet(*topo, 0, 15), 0);
  ASSERT_TRUE(net.drain(10000));
  EXPECT_EQ(net.delivered(), 1u);
}

}  // namespace
}  // namespace ddpm::wormhole
