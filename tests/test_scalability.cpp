// Reproduces the analytical content of Tables 1, 2 and 3.
#include "marking/scalability.hpp"

#include <gtest/gtest.h>

namespace ddpm::mark {
namespace {

TEST(Table1, SimplePpmMeshBits) {
  // Paper §4.2: 4x4 mesh needs 2*2log16 + log8 = 11 bits; 8x8 exactly 16.
  EXPECT_EQ(required_bits_mesh2d(SchemeKind::kSimplePpm, 4), 11);
  EXPECT_EQ(required_bits_mesh2d(SchemeKind::kSimplePpm, 8), 16);
  EXPECT_GT(required_bits_mesh2d(SchemeKind::kSimplePpm, 16), 16);
}

TEST(Table1, SimplePpmMaxima) {
  // Table 1: max 8x8 mesh/torus, 2^6 hypercube.
  EXPECT_EQ(max_mesh2d_side(SchemeKind::kSimplePpm), 8);
  EXPECT_EQ(max_hypercube_dim(SchemeKind::kSimplePpm), 6);
}

TEST(Table1, SimplePpmHypercubeBits) {
  EXPECT_EQ(required_bits_hypercube(SchemeKind::kSimplePpm, 6), 15);
  EXPECT_EQ(required_bits_hypercube(SchemeKind::kSimplePpm, 7), 17);
}

TEST(Table2, BitDiffMaxima) {
  // Self-consistent reading of Table 2 (see scalability.hpp): mesh tops out
  // at 16x16 and the hypercube at 2^8 — the paper's printed hypercube
  // maximum.
  EXPECT_EQ(max_mesh2d_side(SchemeKind::kBitDiffPpm), 16);
  EXPECT_EQ(max_hypercube_dim(SchemeKind::kBitDiffPpm), 8);
}

TEST(Table2, BitDiffBits) {
  EXPECT_EQ(required_bits_mesh2d(SchemeKind::kBitDiffPpm, 16), 16);
  EXPECT_GT(required_bits_mesh2d(SchemeKind::kBitDiffPpm, 32), 16);
  EXPECT_EQ(required_bits_hypercube(SchemeKind::kBitDiffPpm, 8), 14);
  EXPECT_GT(required_bits_hypercube(SchemeKind::kBitDiffPpm, 9), 16);
}

TEST(Table3, DdpmMaxima) {
  // Table 3: 128x128 (16384 nodes) mesh/torus, 16-cube (65536 nodes).
  EXPECT_EQ(max_mesh2d_side(SchemeKind::kDdpm), 128);
  EXPECT_EQ(max_hypercube_dim(SchemeKind::kDdpm), 16);
}

TEST(Table3, DdpmBits) {
  EXPECT_EQ(required_bits_mesh2d(SchemeKind::kDdpm, 128), 16);
  EXPECT_GT(required_bits_mesh2d(SchemeKind::kDdpm, 129), 16);
  EXPECT_EQ(required_bits_hypercube(SchemeKind::kDdpm, 16), 16);
}

TEST(Tables, DdpmDominatesEverywhere) {
  for (int n = 4; n <= 128; n *= 2) {
    EXPECT_LT(required_bits_mesh2d(SchemeKind::kDdpm, n),
              required_bits_mesh2d(SchemeKind::kBitDiffPpm, n))
        << n;
    EXPECT_LT(required_bits_mesh2d(SchemeKind::kBitDiffPpm, n),
              required_bits_mesh2d(SchemeKind::kSimplePpm, n))
        << n;
  }
  for (int n = 3; n <= 16; ++n) {
    EXPECT_LE(required_bits_hypercube(SchemeKind::kDdpm, n),
              required_bits_hypercube(SchemeKind::kBitDiffPpm, n));
  }
}

TEST(Tables, ExactMaxSidesAtLeastPowerOfTwoMaxima) {
  EXPECT_GE(max_mesh2d_side_exact(SchemeKind::kSimplePpm),
            max_mesh2d_side(SchemeKind::kSimplePpm));
  EXPECT_GE(max_mesh2d_side_exact(SchemeKind::kDdpm),
            max_mesh2d_side(SchemeKind::kDdpm));
}

TEST(Tables, TableRowsWellFormed) {
  for (auto scheme : {SchemeKind::kSimplePpm, SchemeKind::kBitDiffPpm,
                      SchemeKind::kDdpm}) {
    const auto rows = scalability_table(scheme);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_FALSE(rows[0].formula.empty());
    EXPECT_GT(rows[0].max_nodes, 0u);
    EXPECT_GT(rows[1].max_nodes, 0u);
    EXPECT_FALSE(to_string(scheme).empty());
  }
  // DDPM's maxima dwarf the others' (the paper's scalability headline).
  EXPECT_GT(scalability_table(SchemeKind::kDdpm)[0].max_nodes,
            scalability_table(SchemeKind::kSimplePpm)[0].max_nodes * 100);
}

}  // namespace
}  // namespace ddpm::mark
