// Property sweep across every topology kind: the invariants every regular
// direct network must satisfy, checked exhaustively on small instances.
#include <gtest/gtest.h>

#include "topology/factory.hpp"
#include "topology/graph.hpp"

namespace ddpm::topo {
namespace {

class TopologyProperties : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override { topo_ = make_topology(GetParam()); }
  std::unique_ptr<Topology> topo_;
};

TEST_P(TopologyProperties, IdCoordBijection) {
  for (NodeId id = 0; id < topo_->num_nodes(); ++id) {
    const Coord c = topo_->coord_of(id);
    EXPECT_EQ(c.size(), topo_->num_dims());
    EXPECT_EQ(topo_->id_of(c), id);
    for (std::size_t d = 0; d < c.size(); ++d) {
      EXPECT_GE(c[d], 0);
      EXPECT_LT(c[d], topo_->dim_size(d));
    }
  }
}

TEST_P(TopologyProperties, NeighborSymmetry) {
  for (NodeId a = 0; a < topo_->num_nodes(); ++a) {
    for (Port p = 0; p < topo_->num_ports(); ++p) {
      const auto b = topo_->neighbor(a, p);
      if (!b) continue;
      // The reverse port must exist and lead back.
      const auto back = topo_->port_to(*b, a);
      ASSERT_TRUE(back.has_value()) << GetParam();
      EXPECT_EQ(topo_->neighbor(*b, *back), a);
    }
  }
}

TEST_P(TopologyProperties, NeighborsAreOneHop) {
  for (NodeId a = 0; a < topo_->num_nodes(); ++a) {
    for (NodeId b : topo_->neighbors(a)) {
      EXPECT_EQ(topo_->min_hops(a, b), 1);
      EXPECT_NE(a, b);
    }
  }
}

TEST_P(TopologyProperties, MinHopsMatchesBfsFromNodeZero) {
  const auto dist = bfs_distances(*topo_, 0);
  for (NodeId b = 0; b < topo_->num_nodes(); ++b) {
    EXPECT_EQ(topo_->min_hops(0, b), dist[b]) << GetParam() << " b=" << b;
  }
}

TEST_P(TopologyProperties, MinHopsSymmetric) {
  const NodeId n = topo_->num_nodes();
  for (NodeId a = 0; a < n; a += 3) {
    for (NodeId b = a; b < n; b += 5) {
      EXPECT_EQ(topo_->min_hops(a, b), topo_->min_hops(b, a));
    }
  }
}

TEST_P(TopologyProperties, DiameterIsMaxEccentricity) {
  int worst = 0;
  for (NodeId a = 0; a < topo_->num_nodes(); ++a) {
    for (int d : bfs_distances(*topo_, a)) worst = std::max(worst, d);
  }
  EXPECT_EQ(topo_->diameter(), worst) << GetParam();
}

TEST_P(TopologyProperties, DegreeIsMaxNeighborCount) {
  std::size_t worst = 0;
  for (NodeId a = 0; a < topo_->num_nodes(); ++a) {
    worst = std::max(worst, topo_->neighbors(a).size());
  }
  EXPECT_EQ(std::size_t(topo_->degree()), worst) << GetParam();
}

TEST_P(TopologyProperties, Connected) {
  EXPECT_TRUE(is_connected(*topo_));
}

TEST_P(TopologyProperties, SpecRoundTrips) {
  const auto again = make_topology(topo_->spec());
  EXPECT_EQ(again->num_nodes(), topo_->num_nodes());
  EXPECT_EQ(again->kind(), topo_->kind());
  EXPECT_EQ(again->spec(), topo_->spec());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TopologyProperties,
                         ::testing::Values("mesh:2x2", "mesh:4x4", "mesh:5x3",
                                           "mesh:8x8", "mesh:2x3x4",
                                           "mesh:3x3x3", "torus:3x3",
                                           "torus:4x4", "torus:5x4",
                                           "torus:8x8", "torus:3x3x3",
                                           "torus:4x3x5", "hypercube:1",
                                           "hypercube:2", "hypercube:4",
                                           "hypercube:6"));

TEST(TopologyFactory, RejectsMalformedSpecs) {
  EXPECT_THROW(make_topology("mesh"), std::invalid_argument);
  EXPECT_THROW(make_topology("mesh:"), std::invalid_argument);
  EXPECT_THROW(make_topology("mesh:4x"), std::invalid_argument);
  EXPECT_THROW(make_topology("mesh:x4"), std::invalid_argument);
  EXPECT_THROW(make_topology("ring:8"), std::invalid_argument);
  EXPECT_THROW(make_topology("hypercube:abc"), std::invalid_argument);
  EXPECT_THROW(make_topology("torus:2x2"), std::invalid_argument);
}

TEST(TopologyFactory, ParsesAllKinds) {
  EXPECT_EQ(make_topology("mesh:4x4")->kind(), TopologyKind::kMesh);
  EXPECT_EQ(make_topology("torus:4x4x4")->kind(), TopologyKind::kTorus);
  EXPECT_EQ(make_topology("hypercube:5")->kind(), TopologyKind::kHypercube);
  EXPECT_EQ(to_string(TopologyKind::kMesh), "mesh");
  EXPECT_EQ(to_string(TopologyKind::kTorus), "torus");
  EXPECT_EQ(to_string(TopologyKind::kHypercube), "hypercube");
}

}  // namespace
}  // namespace ddpm::topo
