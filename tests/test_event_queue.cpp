#include "netsim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ddpm::netsim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 50; ++i) {
    q.schedule(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fired[std::size_t(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(42, [] {});
  q.schedule(7, [] {});
  EXPECT_EQ(q.next_time(), 7u);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(10, [&] { fired = true; });
  q.schedule(20, [] {});
  EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().second();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(999));
  const EventId id = q.schedule(1, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddlePreservesOrder) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(q.schedule(SimTime(i), [&fired, i] { fired.push_back(i); }));
  }
  // Cancel every third event.
  for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
  while (!q.empty()) q.pop().second();
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LT(fired[i - 1], fired[i]);
  }
  EXPECT_EQ(fired.size(), 13u);
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(SimTime(i), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, StressRandomOrderStaysSorted) {
  EventQueue q;
  // Pseudo-random insertion with a tiny LCG; verify nondecreasing pops.
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    q.schedule(x % 1000, [] {});
  }
  SimTime last = 0;
  while (!q.empty()) {
    auto [when, action] = q.pop();
    EXPECT_GE(when, last);
    last = when;
  }
}

}  // namespace
}  // namespace ddpm::netsim
