#include "netsim/event_queue.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

namespace ddpm::netsim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 50; ++i) {
    q.schedule(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fired[std::size_t(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(42, [] {});
  q.schedule(7, [] {});
  EXPECT_EQ(q.next_time(), 7u);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(10, [&] { fired = true; });
  q.schedule(20, [] {});
  EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().second();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(999));
  const EventId id = q.schedule(1, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddlePreservesOrder) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(q.schedule(SimTime(i), [&fired, i] { fired.push_back(i); }));
  }
  // Cancel every third event.
  for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
  while (!q.empty()) q.pop().second();
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LT(fired[i - 1], fired[i]);
  }
  EXPECT_EQ(fired.size(), 13u);
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(SimTime(i), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, MoveOnlyActionsAreSupported) {
  // std::function rejects move-only callables; InlineAction must not.
  EventQueue q;
  auto owned = std::make_unique<int>(7);
  int seen = 0;
  q.schedule(1, [&seen, owned = std::move(owned)] { seen = *owned; });
  q.pop().second();
  EXPECT_EQ(seen, 7);
}

TEST(EventQueue, ReservePreservesBehavior) {
  EventQueue q;
  q.reserve(1000);
  std::vector<int> fired;
  for (int i = 10; i-- > 0;) {
    q.schedule(SimTime(i), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LT(fired[i - 1], fired[i]);
  }
  EXPECT_EQ(fired.size(), 10u);
}

// Randomized differential test: the queue against a std::multimap reference
// model under interleaved schedule/cancel/pop. The model orders by
// (time, seq) exactly as the queue contracts to, so any divergence in pop
// order — including same-instant FIFO order — or in cancel results fails.
TEST(EventQueue, StressMatchesMultimapModel) {
  EventQueue q;
  using Key = std::pair<SimTime, std::uint64_t>;  // (when, schedule order)
  std::map<Key, std::uint64_t> model;             // -> model token
  std::map<std::uint64_t, std::pair<EventId, Key>> pending;  // token -> id
  std::uint64_t next_token = 0;
  std::uint64_t schedule_order = 0;
  std::uint64_t fired_token = 0;
  bool fired = false;

  std::uint64_t x = 0x243f6a8885a308d3ull;
  auto rnd = [&x](std::uint64_t bound) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x % bound;
  };

  SimTime now = 0;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t op = rnd(10);
    if (op < 5 || model.empty()) {
      // Schedule at or after `now` (the queue forbids the simulated past).
      const SimTime when = now + rnd(50);
      const std::uint64_t token = next_token++;
      const Key key{when, schedule_order++};
      const EventId id = q.schedule(when, [&fired_token, &fired, token] {
        fired_token = token;
        fired = true;
      });
      model.emplace(key, token);
      pending.emplace(token, std::make_pair(id, key));
    } else if (op < 7) {
      // Cancel a pending-or-not event; results must agree with the model.
      if (!pending.empty()) {
        auto it = pending.begin();
        std::advance(it, long(rnd(pending.size())));
        const auto [id, key] = it->second;
        const bool in_model = model.count(key) > 0;
        EXPECT_EQ(q.cancel(id), in_model);
        model.erase(key);
        EXPECT_FALSE(q.cancel(id)) << "double cancel must fail";
        if (rnd(2) == 0) pending.erase(it);  // keep some ids around as stale
      }
    } else {
      // Pop: earliest (time, seq) of the model must come out, FIFO for ties.
      ASSERT_EQ(q.empty(), model.empty());
      ASSERT_EQ(q.size(), model.size());
      if (!model.empty()) {
        EXPECT_EQ(q.next_time(), model.begin()->first.first);
        fired = false;
        auto [when, action] = q.pop();
        action();
        ASSERT_TRUE(fired);
        EXPECT_EQ(when, model.begin()->first.first);
        EXPECT_EQ(fired_token, model.begin()->second);
        now = when;
        model.erase(model.begin());
      }
    }
  }
  // Drain: remaining order must match the model exactly.
  while (!model.empty()) {
    fired = false;
    q.pop().second();
    ASSERT_TRUE(fired);
    EXPECT_EQ(fired_token, model.begin()->second);
    model.erase(model.begin());
  }
  EXPECT_TRUE(q.empty());
}

// The cancelled action below is a land mine: if tombstone slot reuse ever
// resurrected a cancelled event, draining the queue would trip
// DDPM_UNREACHABLE and abort. The companion death test proves the mine is
// armed by firing an identical, *uncancelled* action.
TEST(EventQueueDeathTest, TombstoneReuseNeverResurrectsCancelledEvent) {
  // Control: the same action, not cancelled, must abort the process —
  // otherwise the main assertion below would be vacuous.
  EXPECT_DEATH(
      {
        EventQueue q;
        q.schedule(1, [] { DDPM_UNREACHABLE("armed action fired"); });
        q.pop().second();
      },
      "armed action fired");

  EventQueue q;
  std::vector<EventId> mines;
  for (int i = 0; i < 64; ++i) {
    mines.push_back(
        q.schedule(5, [] { DDPM_UNREACHABLE("cancelled event fired"); }));
  }
  for (const EventId id : mines) EXPECT_TRUE(q.cancel(id));
  // Churn hard enough that every tombstoned ticket slot is reused several
  // times (the freelist hands slots back LIFO).
  int benign_fired = 0;
  for (int round = 0; round < 8; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 64; ++i) {
      ids.push_back(q.schedule(SimTime(5 + round), [&benign_fired] {
        ++benign_fired;
      }));
    }
    // Stale ids from the mined generation must stay dead forever.
    for (const EventId id : mines) EXPECT_FALSE(q.cancel(id));
    for (std::size_t i = 0; i < ids.size(); i += 2) EXPECT_TRUE(q.cancel(ids[i]));
  }
  while (!q.empty()) q.pop().second();  // a resurrection would abort here
  EXPECT_EQ(benign_fired, 8 * 32);
}

TEST(EventQueue, StaleIdsStayDeadAcrossClear) {
  EventQueue q;
  const EventId id = q.schedule(3, [] {});
  q.clear();
  EXPECT_FALSE(q.cancel(id));
  // The slot is recycled for the next event; the stale id must not hit it.
  bool fired = false;
  q.schedule(1, [&fired] { fired = true; });
  EXPECT_FALSE(q.cancel(id));
  q.pop().second();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, TombstoneCountTracksLazyCancellation) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 32; ++i) ids.push_back(q.schedule(SimTime(i), [] {}));
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.cancel(ids[std::size_t(i)]));
  EXPECT_EQ(q.size(), 24u);
  EXPECT_EQ(q.tombstone_count(), 8u);
  // Popping past the dead prefix sweeps the tombstones out.
  q.pop().second();
  EXPECT_EQ(q.tombstone_count(), 0u);
}

TEST(EventQueue, HeavyCancellationCompactsStorage) {
  // Cancel nearly everything, repeatedly; the sweep keeps the queue usable
  // and ordering intact (cancel-heavy timer workloads).
  EventQueue q;
  for (int round = 0; round < 50; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 400; ++i) {
      ids.push_back(q.schedule(SimTime(round * 1000 + i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i % 100 != 0) {
        EXPECT_TRUE(q.cancel(ids[i]));
      }
    }
  }
  EXPECT_EQ(q.size(), 50u * 4u);
  SimTime last = 0;
  while (!q.empty()) {
    auto [when, action] = q.pop();
    EXPECT_GE(when, last);
    last = when;
  }
}

TEST(EventQueue, StressRandomOrderStaysSorted) {
  EventQueue q;
  // Pseudo-random insertion with a tiny LCG; verify nondecreasing pops.
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    q.schedule(x % 1000, [] {});
  }
  SimTime last = 0;
  while (!q.empty()) {
    auto [when, action] = q.pop();
    EXPECT_GE(when, last);
    last = when;
  }
}

}  // namespace
}  // namespace ddpm::netsim
