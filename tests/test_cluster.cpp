#include "cluster/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "marking/ddpm.hpp"

namespace ddpm::cluster {
namespace {

pkt::Packet make_packet(const ClusterNetwork& net, topo::NodeId src,
                        topo::NodeId dst, std::uint32_t payload = 80) {
  pkt::Packet p;
  p.header = pkt::IpHeader(net.addresses().address_of(src),
                           net.addresses().address_of(dst), pkt::IpProto::kUdp,
                           std::uint16_t(payload));
  p.header.set_ttl(64);
  p.true_source = src;
  p.dest_node = dst;
  p.payload_bytes = payload;
  return p;
}

ClusterConfig quiet_config() {
  ClusterConfig config;
  config.topology = "mesh:4x4";
  config.router = "dor";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0;  // manual injection only
  return config;
}

TEST(Cluster, SinglePacketDeliveredWithExpectedLatency) {
  ClusterNetwork net(quiet_config());
  std::optional<pkt::Packet> got;
  net.set_delivery_hook([&](const pkt::Packet& p, topo::NodeId at) {
    EXPECT_EQ(at, 3u);
    got = p;
  });
  net.start();
  auto p = make_packet(net, 0, 3, 80);
  p.injected_at = net.sim().now();
  ASSERT_TRUE(net.inject(std::move(p), 0));
  net.run_until(100000);
  ASSERT_TRUE(got.has_value());
  // 3 hops, each serializing 100 wire bytes at 1 B/tick + 50 ticks of
  // propagation = 3 * 150.
  EXPECT_EQ(got->delivered_at, 450u);
  EXPECT_EQ(got->hops, 3u);
  EXPECT_EQ(net.metrics().delivered_benign, 1u);
}

TEST(Cluster, DdpmIdentifiesInClusterContext) {
  ClusterConfig config = quiet_config();
  config.router = "adaptive";
  ClusterNetwork net(config);
  mark::DdpmIdentifier identifier(net.topology());
  std::vector<topo::NodeId> identified;
  net.set_delivery_hook([&](const pkt::Packet& p, topo::NodeId at) {
    for (auto s : identifier.observe(p, at)) identified.push_back(s);
  });
  net.start();
  for (topo::NodeId src = 0; src < 15; ++src) {
    ASSERT_TRUE(net.inject(make_packet(net, src, 15), src));
  }
  net.run_until(1000000);
  ASSERT_EQ(identified.size(), 15u);
  std::sort(identified.begin(), identified.end());
  for (topo::NodeId src = 0; src < 15; ++src) EXPECT_EQ(identified[src], src);
}

TEST(Cluster, TtlExpiryCountsAsDrop) {
  ClusterNetwork net(quiet_config());
  net.start();
  auto p = make_packet(net, 0, 15);
  p.header.set_ttl(2);  // needs 6 hops
  ASSERT_TRUE(net.inject(std::move(p), 0));
  net.run_until(100000);
  EXPECT_EQ(net.metrics().dropped_ttl, 1u);
  EXPECT_EQ(net.metrics().delivered(), 0u);
}

TEST(Cluster, QueueOverflowDrops) {
  ClusterConfig config = quiet_config();
  config.queue_capacity = 2;
  ClusterNetwork net(config);
  net.start();
  // Blast 20 packets through node 0's single productive port at once.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(net.inject(make_packet(net, 0, 3), 0));
  }
  net.run_until(1000000);
  EXPECT_GT(net.metrics().dropped_queue_full, 0u);
  EXPECT_LT(net.metrics().delivered(), 20u);
  EXPECT_EQ(net.metrics().delivered() + net.metrics().dropped_queue_full, 20u);
}

TEST(Cluster, FailedLinkBlocksDeterministicRoute) {
  ClusterNetwork net(quiet_config());
  net.failures().fail(0, 1);  // (0,0)-(0,1): DOR's only way for 0 -> 3
  net.start();
  ASSERT_TRUE(net.inject(make_packet(net, 0, 3), 0));
  net.run_until(100000);
  EXPECT_EQ(net.metrics().dropped_no_route, 1u);
}

TEST(Cluster, SourceBlockRefusesInjection) {
  ClusterNetwork net(quiet_config());
  net.filter().block_source_node(5);
  net.start();
  EXPECT_FALSE(net.inject(make_packet(net, 5, 3), 5));
  EXPECT_EQ(net.metrics().blocked_at_source, 1u);
  EXPECT_TRUE(net.inject(make_packet(net, 6, 3), 6));
}

TEST(Cluster, SignatureFilterSuppressesDelivery) {
  ClusterConfig config = quiet_config();
  config.scheme = "none";  // keep the field exactly as injected
  ClusterNetwork net(config);
  net.filter().block_signature(0x1234);
  int delivered = 0;
  net.set_delivery_hook([&](const pkt::Packet&, topo::NodeId) { ++delivered; });
  net.start();
  auto bad = make_packet(net, 0, 3);
  bad.set_marking_field(0x1234);
  auto good = make_packet(net, 0, 3);
  good.set_marking_field(0x4321);
  ASSERT_TRUE(net.inject(std::move(bad), 0));
  ASSERT_TRUE(net.inject(std::move(good), 0));
  net.run_until(100000);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.metrics().filtered_at_victim, 1u);
}

TEST(Cluster, BenignTrafficFlowsAndBalances) {
  ClusterConfig config;
  config.topology = "torus:4x4";
  config.router = "adaptive";
  config.benign_rate_per_node = 0.001;
  config.seed = 11;
  ClusterNetwork net(config);
  net.start();
  net.run_until(200000);
  const Metrics& m = net.metrics();
  EXPECT_GT(m.injected_benign, 1000u);
  EXPECT_GT(m.delivered_benign, m.injected_benign * 9 / 10);
  EXPECT_LE(m.delivered(), m.injected());
  EXPECT_GT(m.latency_benign.mean(), 0.0);
  EXPECT_GT(m.hops.mean(), 1.0);
  EXPECT_EQ(m.injected_attack, 0u);
}

TEST(Cluster, FloodAttackReachesVictim) {
  ClusterConfig config;
  config.topology = "mesh:4x4";
  config.benign_rate_per_node = 0.0;
  ClusterNetwork net(config);
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kUdpFlood;
  attack.victim = 15;
  attack.zombies = {0, 5, 10};
  attack.rate_per_zombie = 0.002;
  attack.start_time = 1000;
  net.set_attack(attack);
  std::uint64_t victim_got = 0;
  net.set_delivery_hook([&](const pkt::Packet& p, topo::NodeId at) {
    if (at == 15 && p.is_attack()) ++victim_got;
  });
  net.start();
  net.run_until(500000);
  EXPECT_GT(net.metrics().injected_attack, 1000u);
  EXPECT_GT(victim_got, 500u);
}

TEST(Cluster, AttackWindowCloses) {
  ClusterConfig config = quiet_config();
  ClusterNetwork net(config);
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kUdpFlood;
  attack.victim = 15;
  attack.zombies = {0};
  attack.rate_per_zombie = 0.01;
  attack.start_time = 0;
  attack.stop_time = 10000;
  net.set_attack(attack);
  net.start();
  net.run_until(200000);
  const auto injected = net.metrics().injected_attack;
  EXPECT_GT(injected, 0u);
  // Roughly rate * window worth, certainly not rate * full run.
  EXPECT_LT(injected, 400u);
}

TEST(Cluster, WormSpreadsExponentially) {
  ClusterConfig config;
  config.topology = "mesh:4x4";
  config.benign_rate_per_node = 0.0;
  ClusterNetwork net(config);
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kWorm;
  attack.zombies = {0};  // patient zero
  attack.worm_scan_rate = 0.01;
  attack.worm_incubation = 100;
  net.set_attack(attack);
  net.start();
  EXPECT_EQ(net.infected_count(), 1u);
  net.run_until(50000);
  const auto midway = net.infected_count();
  EXPECT_GT(midway, 1u);
  net.run_until(400000);
  EXPECT_EQ(net.infected_count(), 16u);  // full compromise
  EXPECT_TRUE(net.node_infected(13));
}

TEST(Cluster, LifecycleErrors) {
  ClusterNetwork net(quiet_config());
  net.start();
  EXPECT_THROW(net.start(), std::logic_error);
  attack::AttackConfig attack;
  EXPECT_THROW(net.set_attack(attack), std::logic_error);
}

TEST(Cluster, RecordTracesCapturesPath) {
  ClusterConfig config = quiet_config();
  config.record_traces = true;
  config.benign_rate_per_node = 0.0001;
  config.seed = 3;
  ClusterNetwork net(config);
  std::vector<topo::NodeId> trace;
  net.set_delivery_hook([&](const pkt::Packet& p, topo::NodeId) {
    if (trace.empty()) trace = p.trace;
  });
  net.start();
  net.run_until(200000);
  ASSERT_GT(trace.size(), 1u);
  // Trace must be a connected walk.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_TRUE(net.topology().port_to(trace[i - 1], trace[i]).has_value());
  }
}

TEST(Cluster, IngressFilteringDropsSpoofedInjections) {
  ClusterConfig config = quiet_config();
  config.ingress_filtering = true;
  ClusterNetwork net(config);
  net.start();
  // Honest packet passes.
  EXPECT_TRUE(net.inject(make_packet(net, 0, 3), 0));
  // Spoofed packet (claims node 5's address, injected at node 0) dies.
  auto spoofed = make_packet(net, 0, 3);
  spoofed.header.set_source(net.addresses().address_of(5));
  EXPECT_FALSE(net.inject(std::move(spoofed), 0));
  EXPECT_EQ(net.metrics().dropped_spoofed_ingress, 1u);
  // Foreign (non-cluster) source address dies too.
  auto foreign = make_packet(net, 0, 3);
  foreign.header.set_source(0xdeadbeef);
  EXPECT_FALSE(net.inject(std::move(foreign), 0));
  EXPECT_EQ(net.metrics().dropped_spoofed_ingress, 2u);
}

TEST(Cluster, IngressFilteringNeutralizesSpoofedFloods) {
  ClusterConfig config;
  config.topology = "mesh:4x4";
  config.benign_rate_per_node = 0.0;
  config.ingress_filtering = true;
  ClusterNetwork net(config);
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kUdpFlood;
  attack.victim = 15;
  attack.zombies = {0, 5};
  attack.rate_per_zombie = 0.005;
  attack.spoof = attack::SpoofStrategy::kRandomAny;  // never a valid self
  attack.start_time = 0;
  net.set_attack(attack);
  net.start();
  net.run_until(300000);
  EXPECT_EQ(net.metrics().injected_attack, 0u);
  EXPECT_GT(net.metrics().dropped_spoofed_ingress, 1000u);
  EXPECT_EQ(net.metrics().delivered_attack, 0u);
}

TEST(Cluster, MidRunLinkFailureReroutesAdaptiveTraffic) {
  // Fail links while traffic is flowing: adaptive routing detours, DDPM
  // keeps identifying, and only the no-route counter may grow.
  ClusterConfig config;
  config.topology = "mesh:6x6";
  config.router = "adaptive-misroute";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0005;
  config.seed = 77;
  ClusterNetwork net(config);
  mark::DdpmIdentifier identifier(net.topology());
  std::uint64_t checked = 0, correct = 0;
  net.set_delivery_hook([&](const pkt::Packet& p, topo::NodeId at) {
    ++checked;
    const auto named = identifier.identify(at, p.marking_field());
    correct += (named && *named == p.true_source);
  });
  net.start();
  net.run_until(100000);
  // Sever a column of links through the middle of the mesh.
  for (int y = 1; y <= 4; ++y) {
    net.failures().fail(net.topology().id_of(topo::Coord{2, y}),
                        net.topology().id_of(topo::Coord{3, y}));
  }
  net.run_until(300000);
  EXPECT_GT(checked, 2000u);
  EXPECT_EQ(correct, checked);  // identification survives the rerouting
  EXPECT_GT(net.metrics().delivered_benign, 2000u);
}

TEST(Cluster, AdaptiveAvoidsCongestedPortsEndToEnd) {
  // Pump a hot flow along one row; a second flow with two minimal choices
  // must mostly take the uncongested one. Compare mean latency against a
  // run where the router is deterministic (forced through the hot row).
  auto run = [](const char* router) {
    ClusterConfig config;
    config.topology = "mesh:4x4";
    config.router = router;
    config.scheme = "none";
    config.benign_rate_per_node = 0.0;
    config.queue_capacity = 64;
    ClusterNetwork net(config);
    net.start();
    // Hot flow: (0,0) -> (3,0) backs up row y=0 (40 packets stay under the
    // queue capacity so the probe is delayed, not dropped).
    for (int i = 0; i < 40; ++i) {
      pkt::Packet hot;
      hot.header = pkt::IpHeader(1, 2, pkt::IpProto::kUdp, 200);
      hot.header.set_ttl(64);
      hot.true_source = net.topology().id_of(topo::Coord{0, 0});
      hot.dest_node = net.topology().id_of(topo::Coord{3, 0});
      hot.payload_bytes = 200;
      hot.injected_at = net.sim().now();
      net.inject(std::move(hot), hot.true_source);
    }
    // Probe flow: (0,0) -> (3,3) has many minimal paths.
    pkt::Packet probe;
    probe.header = pkt::IpHeader(1, 2, pkt::IpProto::kUdp, 64);
    probe.header.set_ttl(64);
    probe.true_source = net.topology().id_of(topo::Coord{0, 0});
    probe.dest_node = net.topology().id_of(topo::Coord{3, 3});
    probe.payload_bytes = 64;
    probe.injected_at = net.sim().now();
    netsim::SimTime probe_latency = 0;
    net.set_delivery_hook([&](const pkt::Packet& p, topo::NodeId) {
      if (p.dest_node == net.topology().id_of(topo::Coord{3, 3})) {
        probe_latency = p.delivered_at - p.injected_at;
      }
    });
    net.inject(std::move(probe), net.topology().id_of(topo::Coord{0, 0}));
    net.run_until(10000000);
    return probe_latency;
  };
  const auto adaptive = run("adaptive");
  const auto deterministic = run("dor");
  EXPECT_LT(adaptive, deterministic / 2);
}

TEST(Cluster, CongestionMetricVisible) {
  ClusterConfig config = quiet_config();
  config.queue_capacity = 64;
  ClusterNetwork net(config);
  net.start();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(net.inject(make_packet(net, 0, 3), 0));
  }
  // Before the simulator runs, packets sit in node 0's output queue.
  EXPECT_GT(net.queue_length(0, 3), 0u);
  net.run_until(1000000);
  EXPECT_EQ(net.queue_length(0, 3), 0u);
}

}  // namespace
}  // namespace ddpm::cluster
