#include "analysis/attack_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/mesh.hpp"

namespace ddpm::analysis {
namespace {

TEST(AttackGraph, RanksSourcesByWeight) {
  AttackGraph graph(63);
  graph.add_source(5, 10);
  graph.add_source(9, 30);
  graph.add_source(5, 5);
  graph.add_source(2, 30);  // tie with 9: smaller id first
  const auto ranked = graph.ranked_sources();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0], (std::pair<topo::NodeId, std::uint64_t>{2, 30}));
  EXPECT_EQ(ranked[1], (std::pair<topo::NodeId, std::uint64_t>{9, 30}));
  EXPECT_EQ(ranked[2], (std::pair<topo::NodeId, std::uint64_t>{5, 15}));
  EXPECT_EQ(graph.total_verdicts(), 75u);
}

TEST(AttackGraph, DotContainsAllElements) {
  topo::Mesh m({4, 4});
  AttackGraph graph(15);
  graph.add_source(0, 100);
  graph.add_path_edge(0, 1);
  graph.add_path_edge(1, 5);
  const std::string dot = graph.to_dot(&m);
  EXPECT_NE(dot.find("digraph attack"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // the victim
  EXPECT_NE(dot.find("n0 -> n15"), std::string::npos);     // verdict edge
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);      // path edge
  EXPECT_NE(dot.find("n1 -> n5"), std::string::npos);
  EXPECT_NE(dot.find("(0,0)"), std::string::npos);         // coord labels
  EXPECT_NE(dot.find("\"100\""), std::string::npos);       // weight label
  // Balanced braces, single graph.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), 1);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
}

TEST(AttackGraph, WorksWithoutTopology) {
  AttackGraph graph(1);
  graph.add_source(0);
  const std::string dot = graph.to_dot();
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_EQ(dot.find("(0,0)"), std::string::npos);  // no coord labels
}

TEST(AttackGraph, EmptyGraphStillValidDot) {
  AttackGraph graph(3);
  EXPECT_TRUE(graph.empty());
  const std::string dot = graph.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

}  // namespace
}  // namespace ddpm::analysis
