#include "irregular/irregular.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ddpm::irregular {
namespace {

TEST(Irregular, ConnectedWithExpectedEdgeCount) {
  IrregularTopology topo(32, 10, 7);
  EXPECT_EQ(topo.num_nodes(), 32u);
  EXPECT_EQ(topo.num_edges(), 31u + 10u);  // spanning tree + extras
  // Connectivity: every node has a BFS level.
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_GE(topo.level(n), 0);
  }
  EXPECT_EQ(topo.level(0), 0);
}

TEST(Irregular, AdjacencySymmetric) {
  IrregularTopology topo(24, 8, 3);
  for (NodeId a = 0; a < topo.num_nodes(); ++a) {
    for (NodeId b : topo.neighbors(a)) {
      EXPECT_TRUE(topo.adjacent(b, a));
      EXPECT_NE(a, b);
    }
  }
}

TEST(Irregular, UpDownOrientationAntisymmetric) {
  IrregularTopology topo(24, 8, 3);
  for (NodeId a = 0; a < topo.num_nodes(); ++a) {
    for (NodeId b : topo.neighbors(a)) {
      EXPECT_NE(topo.is_up(a, b), topo.is_up(b, a));
    }
  }
}

TEST(Irregular, RejectsBadParameters) {
  EXPECT_THROW(IrregularTopology(1, 0, 1), std::invalid_argument);
  EXPECT_THROW(IrregularTopology(4, 100, 1), std::invalid_argument);
  EXPECT_NO_THROW(IrregularTopology(4, 3, 1));  // complete graph K4
}

TEST(Irregular, DeterministicForSeed) {
  IrregularTopology a(20, 6, 11), b(20, 6, 11), c(20, 6, 12);
  EXPECT_EQ(a.spec(), b.spec());
  for (NodeId n = 0; n < 20; ++n) {
    EXPECT_EQ(a.neighbors(n), b.neighbors(n));
  }
  bool different = false;
  for (NodeId n = 0; n < 20 && !different; ++n) {
    different = a.neighbors(n) != c.neighbors(n);
  }
  EXPECT_TRUE(different);
}

TEST(UpDown, AllPairsRoutable) {
  IrregularTopology topo(40, 15, 5);
  UpDownRouter router(topo);
  for (NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (NodeId d = 0; d < topo.num_nodes(); ++d) {
      if (s == d) continue;
      EXPECT_GT(router.legal_distance(s, d), 0);
      EXPECT_GE(router.legal_distance(s, d), router.graph_distance(s, d));
    }
  }
}

TEST(UpDown, WalksAreLegalAndShortest) {
  IrregularTopology topo(40, 15, 5);
  UpDownRouter router(topo);
  netsim::Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const auto s = NodeId(rng.next_below(topo.num_nodes()));
    auto d = NodeId(rng.next_below(topo.num_nodes()));
    if (d == s) d = (d + 1) % topo.num_nodes();
    const auto path = walk_updown(topo, router, s, d, rng);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), d);
    EXPECT_EQ(int(path.size()) - 1, router.legal_distance(s, d));
    // Legality: once a down hop happens, no later up hop.
    bool gone_down = false;
    for (std::size_t i = 1; i < path.size(); ++i) {
      ASSERT_TRUE(topo.adjacent(path[i - 1], path[i]));
      const bool up = topo.is_up(path[i - 1], path[i]);
      EXPECT_FALSE(up && gone_down) << "up hop after down hop";
      gone_down = gone_down || !up;
    }
  }
}

TEST(UpDown, TreeOnlyPathsGoThroughCommonAncestor) {
  // With zero extra edges the graph is a tree: the unique path is legal
  // (up to the common ancestor, then down), so inflation is exactly 1.
  IrregularTopology topo(30, 0, 17);
  UpDownRouter router(topo);
  EXPECT_DOUBLE_EQ(router.path_inflation(), 1.0);
}

TEST(UpDown, InflationAboveOneOnCrossEdges) {
  // Cross edges create shortcuts some of which up*/down* cannot use.
  IrregularTopology topo(60, 40, 23);
  UpDownRouter router(topo);
  EXPECT_GE(router.path_inflation(), 1.0);
  EXPECT_LT(router.path_inflation(), 2.0);  // sane
}

TEST(UpDown, AdaptiveChoicesExist) {
  // With cross edges, at least some (state, dest) pairs offer >1 next hop.
  IrregularTopology topo(40, 20, 29);
  UpDownRouter router(topo);
  bool multi = false;
  for (NodeId s = 0; s < topo.num_nodes() && !multi; ++s) {
    for (NodeId d = 0; d < topo.num_nodes() && !multi; ++d) {
      if (s == d) continue;
      multi = router.next_hops(s, d, false).size() > 1;
    }
  }
  EXPECT_TRUE(multi);
}

}  // namespace
}  // namespace ddpm::irregular
