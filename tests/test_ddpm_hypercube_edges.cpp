// DDPM identification edge cases on hypercubes: the degenerate and
// saturating ends of the dimension range (0 rejected, 1 minimal, 16 fills
// the Marking Field exactly, 17 unconstructible) plus self-addressed
// packets on every topology family.
#include <gtest/gtest.h>

#include <stdexcept>

#include "marking/ddpm.hpp"
#include "marking/scalability.hpp"
#include "marking/walk.hpp"
#include "routing/dor.hpp"
#include "topology/factory.hpp"

namespace mark = ddpm::mark;
namespace route = ddpm::route;
namespace topo = ddpm::topo;

namespace {

TEST(HypercubeEdges, DimensionZeroIsRejected) {
  EXPECT_THROW((void)topo::make_topology("hypercube:0"), std::invalid_argument);
}

TEST(HypercubeEdges, DimensionSeventeenIsRejected) {
  EXPECT_THROW((void)topo::make_topology("hypercube:17"),
               std::invalid_argument);
}

TEST(HypercubeEdges, OneDimensionalCubeIdentifiesBothWays) {
  const auto t = topo::make_topology("hypercube:1");
  ASSERT_EQ(t->num_nodes(), 2u);
  const route::DimensionOrderRouter router(*t);
  mark::DdpmScheme scheme(*t);
  const mark::DdpmIdentifier identifier(*t);
  for (const topo::NodeId src : {0u, 1u}) {
    const topo::NodeId dst = 1u - src;
    const auto walk =
        mark::walk_packet(*t, router, &scheme, src, dst, {}, 0xffff);
    ASSERT_TRUE(walk.delivered());
    EXPECT_EQ(walk.hops, 1);
    const auto back = identifier.identify(dst, walk.packet.marking_field());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, src);
  }
}

TEST(HypercubeEdges, SixteenDimensionsSaturateTheFieldExactly) {
  const auto t = topo::make_topology("hypercube:16");
  EXPECT_EQ(t->num_nodes(), 65536u);
  EXPECT_EQ(mark::DdpmCodec::required_bits(*t), 16);
  EXPECT_TRUE(mark::DdpmCodec::fits(*t));
  EXPECT_EQ(mark::required_bits_hypercube(mark::SchemeKind::kDdpm, 16), 16);
  // All sixteen 1-bit slices tile the field contiguously.
  const mark::DdpmCodec codec(*t);
  unsigned offset = 0;
  for (std::size_t d = 0; d < 16; ++d) {
    EXPECT_EQ(codec.slice(d).offset, offset);
    EXPECT_EQ(codec.slice(d).width, 1u);
    ++offset;
  }
  // The all-ones displacement (antipodal route) round-trips at the brim.
  topo::Coord ones(16);
  for (std::size_t d = 0; d < 16; ++d) ones[d] = 1;
  EXPECT_EQ(codec.decode(codec.encode(ones)), ones);
}

TEST(HypercubeEdges, AntipodalWalkOnTheSaturatingCubeIdentifies) {
  const auto t = topo::make_topology("hypercube:16");
  const route::DimensionOrderRouter router(*t);
  mark::DdpmScheme scheme(*t);
  const mark::DdpmIdentifier identifier(*t);
  struct Pair {
    topo::NodeId src, dst;
  };
  // Antipodes (full 16-hop diameter, every slice flips), plus asymmetric
  // pairs exercising high and low bit slices.
  for (const Pair p : {Pair{0u, 0xffffu}, Pair{0xffffu, 0u},
                       Pair{0x8001u, 0x7ffeu}, Pair{0x1234u, 0x4321u}}) {
    const auto walk =
        mark::walk_packet(*t, router, &scheme, p.src, p.dst, {}, 0xabcd);
    ASSERT_TRUE(walk.delivered());
    EXPECT_EQ(walk.hops,
              (topo::Coord(t->coord_of(p.src)) ^ t->coord_of(p.dst))
                  .nonzero_count());
    const auto back = identifier.identify(p.dst, walk.packet.marking_field());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p.src);
  }
}

TEST(SelfAddressed, InjectionZeroesTheFieldAndIdentifiesTheVictimItself) {
  // S == D: the packet never leaves its switch; the mark must be the zero
  // vector (even with attacker garbage pre-loaded) and identification must
  // return the victim's own node.
  for (const char* spec : {"mesh:4x4", "torus:5x5", "hypercube:4"}) {
    const auto t = topo::make_topology(spec);
    const route::DimensionOrderRouter router(*t);
    mark::DdpmScheme scheme(*t);
    const mark::DdpmIdentifier identifier(*t);
    for (topo::NodeId node = 0; node < t->num_nodes(); ++node) {
      const auto walk =
          mark::walk_packet(*t, router, &scheme, node, node, {}, 0xdead);
      ASSERT_TRUE(walk.delivered()) << spec;
      EXPECT_EQ(walk.hops, 0) << spec;
      EXPECT_EQ(walk.packet.marking_field(), 0u) << spec;
      const auto back = identifier.identify(node, walk.packet.marking_field());
      ASSERT_TRUE(back.has_value()) << spec;
      EXPECT_EQ(*back, node) << spec;
    }
  }
}

}  // namespace
