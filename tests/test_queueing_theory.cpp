// Simulator validation against closed-form queueing theory.
//
// On a single link with Poisson arrivals and deterministic service, the
// cluster switch is an M/D/1 queue: mean waiting time W = rho*S/(2(1-rho)).
// If the simulator's latency does not reproduce that, nothing built on it
// can be trusted; this pins it within a few percent at several loads.
#include <gtest/gtest.h>

#include "cluster/network.hpp"

namespace ddpm::cluster {
namespace {

/// Runs a 2-node (1-D mesh) cluster where each node Poisson-injects to
/// the other; returns the measured mean delivery latency.
double measured_latency(double rate_per_node, std::uint32_t payload,
                        netsim::SimTime horizon) {
  ClusterConfig config;
  config.topology = "mesh:2";
  config.router = "dor";
  config.scheme = "none";
  config.pattern = "uniform";  // with 2 nodes: always the other node
  config.benign_rate_per_node = rate_per_node;
  config.benign_payload = payload;
  config.queue_capacity = 100000;  // effectively infinite: no drops
  config.seed = 123;
  ClusterNetwork net(config);
  net.start();
  net.run_until(horizon);
  EXPECT_EQ(net.metrics().dropped(), 0u);
  EXPECT_GT(net.metrics().delivered_benign, 5000u);
  return net.metrics().latency_benign.mean();
}

TEST(QueueingTheory, MD1WaitingTimeAcrossLoads) {
  constexpr std::uint32_t kPayload = 80;           // wire = 100 bytes
  constexpr double kService = 100.0;               // 1 byte/tick
  constexpr double kPropagation = 50.0;
  for (const double rate : {0.002, 0.005, 0.008}) {
    // The node scheduler draws exponential(rate) + 1 tick, so the
    // effective arrival rate is 1 / (1/rate + 1).
    const double lambda = 1.0 / (1.0 / rate + 1.0);
    const double rho = lambda * kService;
    ASSERT_LT(rho, 1.0);
    const double expected =
        rho * kService / (2.0 * (1.0 - rho)) + kService + kPropagation;
    const double measured = measured_latency(rate, kPayload, 4000000);
    EXPECT_NEAR(measured, expected, expected * 0.05)
        << "rho = " << rho;
  }
}

TEST(QueueingTheory, ZeroLoadLatencyIsServicePlusPropagation) {
  // A single manually injected packet sees no queueing at all.
  ClusterConfig config;
  config.topology = "mesh:2";
  config.router = "dor";
  config.scheme = "none";
  config.benign_rate_per_node = 0.0;
  ClusterNetwork net(config);
  netsim::SimTime delivered_at = 0;
  net.set_delivery_hook([&](const pkt::Packet& p, topo::NodeId) {
    delivered_at = p.delivered_at;
  });
  net.start();
  pkt::Packet p;
  p.header = pkt::IpHeader(1, 2, pkt::IpProto::kUdp, 80);
  p.header.set_ttl(64);
  p.true_source = 0;
  p.dest_node = 1;
  p.payload_bytes = 80;
  ASSERT_TRUE(net.inject(std::move(p), 0));
  net.run_until(10000);
  EXPECT_EQ(delivered_at, 150u);  // 100 service + 50 propagation
}

}  // namespace
}  // namespace ddpm::cluster
