#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cluster/network.hpp"
#include "marking/ddpm.hpp"
#include "marking/ingress.hpp"

namespace ddpm::trace {
namespace {

TraceRecord sample(std::uint64_t time, topo::NodeId at, topo::NodeId src,
                   std::uint16_t field) {
  TraceRecord r;
  r.time = time;
  r.delivered_at = at;
  r.claimed_source = 0x0a000001;
  r.dest_address = 0x0a000002;
  r.marking_field = field;
  r.protocol = 17;
  r.traffic_class = 1;
  r.hops = 4;
  r.flow = 99;
  r.true_source = src;
  return r;
}

TEST(Trace, WriteReadRoundTrip) {
  std::ostringstream out;
  TraceWriter writer(out);
  writer.record(sample(10, 3, 7, 0xbeef));
  writer.record(sample(20, 3, 8, 0x0001));
  EXPECT_EQ(writer.records_written(), 2u);

  std::istringstream in(out.str());
  const auto records = read_trace(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].time, 10u);
  EXPECT_EQ(records[0].marking_field, 0xbeef);
  EXPECT_EQ(records[0].true_source, 7u);
  EXPECT_EQ(records[1].claimed_source, 0x0a000001u);
  EXPECT_EQ(records[1].flow, 99u);
}

TEST(Trace, RejectsMalformedInput) {
  std::istringstream bad_header("wrong,header\n1,2,3\n");
  EXPECT_THROW(read_trace(bad_header), std::invalid_argument);

  std::istringstream bad_row(std::string(TraceWriter::header()) +
                             "\n1,2,notanumber,4,5,6,7,8,9,10,11\n");
  EXPECT_THROW(read_trace(bad_row), std::invalid_argument);

  std::istringstream short_row(std::string(TraceWriter::header()) +
                               "\n1,2,3\n");
  EXPECT_THROW(read_trace(short_row), std::invalid_argument);

  std::istringstream empty_ok(std::string(TraceWriter::header()) + "\n\n");
  EXPECT_TRUE(read_trace(empty_ok).empty());
}

TEST(Trace, OfflineReplayMatchesOnlineIdentification) {
  // Capture a live attack at the victim, then replay the trace cold into a
  // fresh identifier: same verdicts.
  cluster::ClusterConfig config;
  config.topology = "mesh:6x6";
  config.router = "adaptive";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0002;
  config.seed = 8;
  cluster::ClusterNetwork net(config);
  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kUdpFlood;
  attack.victim = 20;
  attack.zombies = {2, 31};
  attack.rate_per_zombie = 0.003;
  attack.start_time = 0;
  net.set_attack(attack);

  std::ostringstream out;
  TraceWriter writer(out);
  mark::DdpmIdentifier online(net.topology());
  std::uint64_t online_correct = 0, online_total = 0;
  net.set_delivery_hook([&](const pkt::Packet& p, topo::NodeId at) {
    if (at != attack.victim) return;
    writer.record(p, at);
    ++online_total;
    const auto named = online.observe(p, at);
    online_correct += (named.size() == 1 && named.front() == p.true_source);
  });
  net.start();
  net.run_until(200000);
  ASSERT_GT(online_total, 100u);

  std::istringstream in(out.str());
  const auto records = read_trace(in);
  EXPECT_EQ(records.size(), online_total);

  mark::DdpmIdentifier offline(net.topology());
  const ReplayResult result = replay(records, offline, attack.victim);
  EXPECT_EQ(result.packets, online_total);
  EXPECT_EQ(result.correct, online_correct);
  EXPECT_EQ(result.misattributed, 0u);
  // Both zombies and the benign senders appear among the named sources.
  EXPECT_GE(result.named.size(), 2u);
}

TEST(Trace, ReplayFiltersByVictim) {
  std::vector<TraceRecord> records{sample(1, 3, 7, 0), sample(2, 4, 7, 0)};
  mark::IngressStampIdentifier identifier(64);
  const auto result = replay(records, identifier, 3);
  EXPECT_EQ(result.packets, 1u);
}

}  // namespace
}  // namespace ddpm::trace
