// Mutation-seeded soundness check for the bounded model checker.
//
// This binary links its OWN build of the wormhole engine, compiled with
// DDPM_MODEL_MUTATIONS so the three seeded protocol bugs
// (src/core/model_hooks.hpp) are live at runtime. For each bug the model
// checker must (a) convict the corresponding abstract configuration with a
// concrete witness, and (b) that witness must replay to a real failure on
// the mutated WormholeNetwork — on both engines. The unmutated control
// must stay clean. A checker that cannot convict a seeded bug, or a
// witness that does not reproduce, is the failure mode this test exists to
// catch (ISSUE satellite: mutation-seeded bug injection).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/model_hooks.hpp"
#include "verify/model/explore.hpp"
#include "verify/model/replay.hpp"
#include "verify/model/witness.hpp"

#ifndef DDPM_MODEL_MUTATIONS
#error "test_model_mutations must be built with DDPM_MODEL_MUTATIONS"
#endif

namespace {

using namespace ddpm;
using namespace ddpm::verify::model;
using core::ModelMutation;

/// A small mesh with the full injection alphabet: the credit-path bugs
/// surface within a couple of cycles of any adjacent flow.
ModelOptions mesh_config(ModelMutation m) {
  ModelOptions opt;
  opt.topology = "mesh:2x2";
  opt.router = "adaptive";
  opt.packets = 2;
  opt.mutation = m;
  return opt;
}

/// Four ring flows on a wrap torus, every packet two hops: the
/// configuration where skipping the escape fallback wedges the network in
/// the textbook hold-and-wait cycle.
ModelOptions ring_config(ModelMutation m) {
  ModelOptions opt;
  opt.topology = "torus:4";
  opt.router = "dor";
  opt.packets = 4;
  opt.allowed_pairs = {{0, 2}, {1, 3}, {2, 0}, {3, 1}};
  opt.mutation = m;
  return opt;
}

void expect_convicted_and_reproduced(const ModelOptions& opt,
                                     const std::string& property,
                                     const std::string& expected_mutation) {
  const ModelCheckResult r = check_model(opt);
  EXPECT_FALSE(r.all_ok()) << "seeded bug escaped the model checker";
  EXPECT_EQ(r.violated, property) << r.detail;
  ASSERT_TRUE(r.has_witness);
  EXPECT_EQ(r.witness.mutation, expected_mutation);
  EXPECT_EQ(r.witness.property, property);
  ASSERT_FALSE(r.witness.events.empty());
  for (const bool soa : {false, true}) {
    SCOPED_TRACE(soa ? "soa engine" : "reference engine");
    const ReplayResult replay = replay_witness(r.witness, soa);
    ASSERT_TRUE(replay.ran) << replay.detail;
    EXPECT_TRUE(replay.reproduced)
        << "witness did not reproduce on the real mutated network: "
        << replay.detail;
  }
}

TEST(ModelMutations, ControlWithoutMutationStaysClean) {
  const ModelCheckResult mesh = check_model(mesh_config(ModelMutation::kNone));
  EXPECT_TRUE(mesh.complete);
  EXPECT_TRUE(mesh.all_ok()) << mesh.violated << ": " << mesh.detail;
  const ModelCheckResult ring = check_model(ring_config(ModelMutation::kNone));
  EXPECT_TRUE(ring.complete);
  EXPECT_TRUE(ring.all_ok()) << ring.violated << ": " << ring.detail;
}

TEST(ModelMutations, DroppedCreditReturnConvictsCreditConservation) {
  expect_convicted_and_reproduced(
      mesh_config(ModelMutation::kDropCreditReturn), "credit-conservation",
      "drop-credit-return");
}

TEST(ModelMutations, BufferOffByOneConvictsTheCreditLedger) {
  // The off-by-one sender believes in one buffer slot that does not exist.
  // The shortest reachable symptom is a conservation break (the phantom
  // credit is restored on ejection before occupancy can exceed the bound),
  // which is exactly what the exhaustive search convicts first.
  expect_convicted_and_reproduced(mesh_config(ModelMutation::kBufferOffByOne),
                                  "credit-conservation", "buffer-off-by-one");
}

TEST(ModelMutations, SkippedEscapeFallbackConvictsDeadlock) {
  const ModelOptions opt = ring_config(ModelMutation::kSkipEscapeFallback);
  const ModelCheckResult r = check_model(opt);
  EXPECT_FALSE(r.ok_progress);
  EXPECT_EQ(r.violated, "bounded-progress");
  EXPECT_EQ(r.progress_kind, "deadlock");
  ASSERT_TRUE(r.has_witness);
  EXPECT_EQ(r.witness.mutation, "skip-escape-fallback");
  for (const bool soa : {false, true}) {
    SCOPED_TRACE(soa ? "soa engine" : "reference engine");
    const ReplayResult replay = replay_witness(r.witness, soa);
    ASSERT_TRUE(replay.ran) << replay.detail;
    EXPECT_TRUE(replay.reproduced) << replay.detail;
  }
  // The same ring with the escape fallback intact drains (the mutation —
  // not the configuration — is what the checker convicts).
  const ModelCheckResult healthy = check_model(ring_config(ModelMutation::kNone));
  EXPECT_TRUE(healthy.all_ok());
}

TEST(ModelMutations, WitnessNamesTheMutationInJson) {
  const ModelCheckResult r =
      check_model(mesh_config(ModelMutation::kDropCreditReturn));
  ASSERT_TRUE(r.has_witness);
  EXPECT_NE(r.witness.to_json().find("\"mutation\": \"drop-credit-return\""),
            std::string::npos);
}

}  // namespace
