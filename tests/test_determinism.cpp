// Determinism regression: the paper's tables are only reproducible if one
// seed produces one bit-identical outcome. Two runs of the same scenario
// with the same seed must agree on every metric — asserted over the full
// JSON serialization (stable key order), not just a handful of fields, so
// any future nondeterminism (unordered-container iteration, uninitialized
// reads, wall-clock leakage) trips this test.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/report_json.hpp"
#include "core/sis.hpp"
#include "core/sweep_grid.hpp"
#include "flow/trace_gen.hpp"
#include "stream/flow_analyzer.hpp"

namespace ddpm::core {
namespace {

ScenarioConfig scenario(const std::string& topology, const std::string& router,
                        std::uint64_t seed) {
  ScenarioConfig config;
  config.cluster.topology = topology;
  config.cluster.router = router;
  config.cluster.seed = seed;
  config.cluster.benign_rate_per_node = 0.0003;
  config.identifier = "ddpm";
  config.detect_rate_threshold = 0.003;
  config.attack.kind = attack::AttackKind::kUdpFlood;
  config.attack.victim = 21;
  config.attack.zombies = {3, 14};
  config.attack.rate_per_zombie = 0.006;
  config.attack.start_time = 20000;
  config.duration = 120000;
  return config;
}

/// FNV-1a digest of the serialized report — a compact fingerprint that
/// makes failures easy to report and compare across machines.
std::uint64_t digest(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string run_to_json(const ScenarioConfig& config) {
  SourceIdentificationSystem sis(config);
  const ScenarioReport report = sis.run();
  return to_json(config, report);
}

TEST(Determinism, SameSeedSameJsonDigest) {
  const auto config = scenario("mesh:6x6", "adaptive", 1234);
  const std::string first = run_to_json(config);
  const std::string second = run_to_json(config);
  EXPECT_EQ(digest(first), digest(second));
  ASSERT_EQ(first, second);
}

TEST(Determinism, SameSeedSameJsonDigestOnTorus) {
  const auto config = scenario("torus:5x5", "dor", 77);
  EXPECT_EQ(run_to_json(config), run_to_json(config));
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Not a correctness requirement in itself, but if two seeds ever produce
  // identical full reports the RNG plumbing has collapsed somewhere.
  const std::string a = run_to_json(scenario("mesh:6x6", "adaptive", 1));
  const std::string b = run_to_json(scenario("mesh:6x6", "adaptive", 2));
  EXPECT_NE(a, b);
}

TEST(Determinism, ReplicationStreamsDiverge) {
  // Replications share a seed but take disjoint RNG streams; each stream
  // must produce a distinct scenario trajectory.
  auto config = scenario("mesh:6x6", "adaptive", 1234);
  const std::string s0 = run_to_json(config);
  config.cluster.rng_stream = 1;
  const std::string s1 = run_to_json(config);
  EXPECT_NE(s0, s1);
}

/// A small sweep grid used to pin parallel output to serial output.
SweepSpec small_sweep(std::size_t jobs) {
  SweepSpec spec;
  spec.topologies = {"mesh:4x4", "torus:4x4"};
  spec.schemes = {"ddpm", "dpm"};
  spec.routers = {"adaptive"};
  spec.rates = {0.01};
  spec.seeds = 3;
  spec.jobs = jobs;
  return spec;
}

TEST(Determinism, SweepOutputBitIdenticalAcrossJobCounts) {
  // The parallel runner merges replications in (cell, stream) order, so
  // the rendered CSV must be byte-identical no matter how many threads
  // carried the work.
  const std::string serial = sweep_csv(run_sweep(small_sweep(1)));
  const std::string parallel = sweep_csv(run_sweep(small_sweep(4)));
  EXPECT_EQ(digest(serial), digest(parallel));
  ASSERT_EQ(serial, parallel);
  const std::string parallel8 = sweep_csv(run_sweep(small_sweep(8)));
  ASSERT_EQ(serial, parallel8);
}

TEST(Determinism, RepeatedRunsParallelMatchesSerial) {
  const auto config = scenario("mesh:6x6", "adaptive", 99);
  const auto serial = run_replications(config, 4, 1);
  const auto parallel = run_replications(config, 4, 4);
  EXPECT_EQ(serial.runs, parallel.runs);
  EXPECT_EQ(serial.detected_runs, parallel.detected_runs);
  EXPECT_EQ(serial.perfect_runs, parallel.perfect_runs);
  // Exact equality on the floating aggregates: the merge is serial and in
  // replication order, so not even the summation order may differ.
  EXPECT_EQ(serial.true_positives.mean(), parallel.true_positives.mean());
  EXPECT_EQ(serial.false_positives.mean(), parallel.false_positives.mean());
  EXPECT_EQ(serial.detection_latency.mean(),
            parallel.detection_latency.mean());
  EXPECT_EQ(serial.packets_to_first_identification.mean(),
            parallel.packets_to_first_identification.mean());
  EXPECT_EQ(serial.benign_latency_mean.mean(),
            parallel.benign_latency_mean.mean());
}

TEST(Determinism, TelemetrySnapshotsByteIdenticalAcrossJobCounts) {
  // Per-replication metrics snapshots merge serially in replication order,
  // so the aggregated telemetry must serialize byte-identically whether the
  // replications ran on one thread or eight.
  const auto config = scenario("mesh:6x6", "adaptive", 4321);
  const auto serial = run_replications(config, 8, 1);
  const auto parallel = run_replications(config, 8, 8);
  EXPECT_EQ(digest(serial.telemetry.to_json()),
            digest(parallel.telemetry.to_json()));
  ASSERT_EQ(serial.telemetry.to_json(), parallel.telemetry.to_json());
  ASSERT_EQ(serial.telemetry.to_csv(), parallel.telemetry.to_csv());
}

TEST(Determinism, SweepTelemetryBitIdenticalAcrossJobCounts) {
  const std::string serial = sweep_metrics_json(run_sweep(small_sweep(1)));
  const std::string parallel = sweep_metrics_json(run_sweep(small_sweep(8)));
  ASSERT_EQ(serial, parallel);
}

/// One flow-replay detection report rendered at a given worker count. The
/// analyzer's shard count is structural (part of the config), so jobs may
/// only change who does the work, never a byte of the answer.
std::string flow_report_json(std::size_t jobs) {
  flow::TraceGenConfig gen;
  gen.seed = 31337;
  gen.attack = flow::AttackShape::kFlood;
  gen.attack_sources = 30'000;
  gen.attack_start = 50'000;
  gen.attack_duration = 150'000;
  gen.duration = 300'000;
  flow::TraceGenerator source(gen);
  stream::FlowAnalyzerConfig config;
  config.jobs = jobs;
  return stream::replay(source, config).to_json();
}

TEST(Determinism, FlowReplayBitIdenticalAcrossJobCounts) {
  const std::string serial = flow_report_json(1);
  EXPECT_NE(serial.find("\"detection_time\": "), std::string::npos);
  const std::string parallel4 = flow_report_json(4);
  EXPECT_EQ(digest(serial), digest(parallel4));
  ASSERT_EQ(serial, parallel4);
  const std::string parallel8 = flow_report_json(8);
  ASSERT_EQ(serial, parallel8);
}

}  // namespace
}  // namespace ddpm::core
