#include "indirect/butterfly.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ddpm::indirect {
namespace {

TEST(Butterfly, BasicCounts) {
  Butterfly net(2, 3);  // 2-ary 3-fly: 8 terminals, 3 stages of 4 switches
  EXPECT_EQ(net.num_terminals(), 8u);
  EXPECT_EQ(net.switches_per_stage(), 4u);
  EXPECT_EQ(net.num_switches(), 12u);
  EXPECT_EQ(net.spec(), "butterfly:2-ary-3-fly");
}

TEST(Butterfly, RejectsBadParameters) {
  EXPECT_THROW(Butterfly(1, 3), std::invalid_argument);
  EXPECT_THROW(Butterfly(2, 0), std::invalid_argument);
  EXPECT_THROW(Butterfly(2, 33), std::invalid_argument);  // overflow
}

TEST(Butterfly, DigitsMostSignificantFirst) {
  Butterfly net(4, 3);  // terminals 0..63, digits base 4
  EXPECT_EQ(net.digit(0b111001, 0), 3);  // 57 = 3*16 + 2*4 + 1
  EXPECT_EQ(net.digit(57, 0), 3);
  EXPECT_EQ(net.digit(57, 1), 2);
  EXPECT_EQ(net.digit(57, 2), 1);
  EXPECT_EQ(net.with_digit(57, 1, 0), 49u);
}

TEST(Butterfly, RouteHasOneHopPerStage) {
  Butterfly net(2, 4);
  const auto hops = net.route(5, 12);
  ASSERT_EQ(hops.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(hops[std::size_t(s)].stage, s);
    EXPECT_LT(hops[std::size_t(s)].switch_index, net.switches_per_stage());
  }
}

TEST(Butterfly, OutputPortsAreDestinationDigits) {
  Butterfly net(4, 2);
  for (TerminalId s = 0; s < net.num_terminals(); ++s) {
    for (TerminalId d = 0; d < net.num_terminals(); ++d) {
      const auto hops = net.route(s, d);
      for (const auto& hop : hops) {
        EXPECT_EQ(hop.out_port, net.digit(d, hop.stage));
      }
    }
  }
}

TEST(Butterfly, InputPortsAreSourceDigits) {
  // The identity port-stamp marking rests on: at stage i, the packet
  // arrives through port = digit i of the SOURCE, for every (src, dst).
  for (const auto& [k, n] : std::vector<std::pair<int, int>>{
           {2, 3}, {2, 4}, {3, 3}, {4, 2}, {8, 2}}) {
    Butterfly net(k, n);
    for (TerminalId s = 0; s < net.num_terminals(); ++s) {
      for (TerminalId d = 0; d < net.num_terminals(); ++d) {
        for (const auto& hop : net.route(s, d)) {
          ASSERT_EQ(hop.in_port, net.digit(s, hop.stage))
              << "k=" << k << " n=" << n << " s=" << s << " d=" << d;
        }
      }
    }
  }
}

TEST(Butterfly, PathIsUniquePerPair) {
  // Destination-tag routing is deterministic: same pair, same hops.
  Butterfly net(2, 4);
  const auto a = net.route(3, 11);
  const auto b = net.route(3, 11);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].switch_index, b[i].switch_index);
    EXPECT_EQ(a[i].in_port, b[i].in_port);
    EXPECT_EQ(a[i].out_port, b[i].out_port);
  }
}

TEST(Butterfly, DistinctSourcesSameDestDivergeSomewhere) {
  Butterfly net(2, 3);
  const TerminalId dst = 6;
  std::set<std::vector<int>> stamp_sequences;
  for (TerminalId s = 0; s < net.num_terminals(); ++s) {
    std::vector<int> in_ports;
    for (const auto& hop : net.route(s, dst)) in_ports.push_back(hop.in_port);
    stamp_sequences.insert(in_ports);
  }
  // Every source leaves a distinct input-port sequence.
  EXPECT_EQ(stamp_sequences.size(), std::size_t(net.num_terminals()));
}

TEST(Butterfly, SwitchIndexDeletesTheStageDigit) {
  Butterfly net(2, 3);
  // Address 0b101: deleting digit 0 -> 0b01, digit 1 -> 0b11, digit 2 -> 0b10.
  EXPECT_EQ(net.switch_index(0, 0b101), 0b01u);
  EXPECT_EQ(net.switch_index(1, 0b101), 0b11u);
  EXPECT_EQ(net.switch_index(2, 0b101), 0b10u);
}

TEST(Butterfly, RouteRejectsBadTerminals) {
  Butterfly net(2, 3);
  EXPECT_THROW(net.route(8, 0), std::out_of_range);
  EXPECT_THROW(net.route(0, 9), std::out_of_range);
}

}  // namespace
}  // namespace ddpm::indirect
