#include "marking/authenticated.hpp"

#include <gtest/gtest.h>

#include "marking/tamper.hpp"
#include "marking/walk.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"

namespace ddpm::mark {
namespace {

constexpr std::uint64_t kSecret = 0xfeedface12345678ULL;

TEST(AuthStamp, HonestStampsAlwaysVerify) {
  const auto topo = topo::make_topology("mesh:8x8");
  AuthenticatedStampScheme scheme(topo->num_nodes(), kSecret);
  AuthenticatedStampIdentifier identifier(topo->num_nodes(), kSecret);
  const auto router = route::make_router("adaptive", *topo);
  netsim::Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    const auto s = topo::NodeId(rng.next_below(topo->num_nodes()));
    auto d = topo::NodeId(rng.next_below(topo->num_nodes()));
    if (d == s) d = (d + 1) % topo->num_nodes();
    WalkOptions options;
    options.seed = rng.next_u64();
    options.record_path = false;
    const auto walk = walk_packet(*topo, *router, &scheme, s, d, options);
    ASSERT_TRUE(walk.delivered());
    const auto named = identifier.observe(walk.packet, d);
    ASSERT_EQ(named.size(), 1u);
    EXPECT_EQ(named.front(), s);
  }
  EXPECT_EQ(identifier.rejected(), 0u);
}

TEST(AuthStamp, FieldLayoutSplitsIndexAndMac) {
  AuthenticatedStampScheme scheme(64, kSecret);
  EXPECT_EQ(scheme.index_bits(), 6u);
  EXPECT_EQ(scheme.mac_bits(), 10u);
  // Different flows give different MACs for the same source.
  EXPECT_NE(scheme.stamp(5, 1), scheme.stamp(5, 2));
  // Different sources give different stamps for the same flow.
  EXPECT_NE(scheme.stamp(5, 1), scheme.stamp(6, 1));
  // Too many nodes leave no MAC bits.
  EXPECT_THROW(AuthenticatedStampScheme(1 << 13, kSecret),
               std::invalid_argument);
}

TEST(AuthStamp, BlindFrameUpForgeriesMostlyRejected) {
  // A compromised mid-path switch rewrites the field to frame node 7. It
  // does not know k_7, so its MAC guesses succeed ~2^-10 of the time.
  const auto topo = topo::make_topology("mesh:8x8");
  const topo::NodeId framed = 7;
  AuthenticatedStampIdentifier identifier(topo->num_nodes(), kSecret);
  netsim::Rng rng(9);
  int accepted = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    pkt::Packet p;
    p.flow = rng.next_u64();
    // Forger writes the framed index plus a random MAC guess.
    const std::uint16_t guess =
        std::uint16_t((std::uint16_t(framed) << 10) |
                      std::uint16_t(rng.next_below(1 << 10)));
    p.set_marking_field(guess);
    const auto named = identifier.observe(p, 63);
    accepted += (named.size() == 1 && named.front() == framed);
  }
  // Expected ~ kTrials / 1024 ~= 20; allow generous slack.
  EXPECT_LT(accepted, 60);
  EXPECT_GT(identifier.rejected(), std::uint64_t(kTrials) * 99 / 100 - 100);
}

TEST(AuthStamp, ReplayConfinedToItsFlow) {
  AuthenticatedStampScheme scheme(64, kSecret);
  AuthenticatedStampIdentifier identifier(64, kSecret);
  // Capture a valid stamp from flow 42...
  const std::uint16_t captured = scheme.stamp(3, 42);
  pkt::Packet replay_same;
  replay_same.flow = 42;
  replay_same.set_marking_field(captured);
  EXPECT_EQ(identifier.observe(replay_same, 0).size(), 1u);
  // ...replaying it under a different flow fails verification.
  pkt::Packet replay_other;
  replay_other.flow = 43;
  replay_other.set_marking_field(captured);
  EXPECT_TRUE(identifier.observe(replay_other, 0).empty());
}

TEST(AuthStamp, WrongMasterSecretRejectsEverything) {
  AuthenticatedStampScheme scheme(64, kSecret);
  AuthenticatedStampIdentifier wrong(64, kSecret ^ 1);
  int accepted = 0;
  for (topo::NodeId s = 0; s < 64; ++s) {
    pkt::Packet p;
    p.flow = 5;
    p.set_marking_field(scheme.stamp(s, 5));
    accepted += !wrong.observe(p, 0).empty();
  }
  EXPECT_LE(accepted, 1);  // chance collisions only
}

TEST(AuthStamp, TamperedPacketsDetectedEndToEnd) {
  // Full pipeline: a compromised switch randomizes fields mid-route; the
  // verifier flags (rather than misattributes) nearly all of them.
  const auto topo = topo::make_topology("mesh:6x6");
  const auto router = route::make_router("dor", *topo);
  const auto mid = topo::NodeId(14);  // on many DOR paths
  TamperingScheme scheme(
      std::make_unique<AuthenticatedStampScheme>(topo->num_nodes(), kSecret),
      {mid}, TamperingScheme::Action::kRandomize);
  AuthenticatedStampIdentifier identifier(topo->num_nodes(), kSecret);
  int detected = 0, misattributed = 0, tampered_total = 0;
  netsim::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto s = topo::NodeId(rng.next_below(topo->num_nodes()));
    auto d = topo::NodeId(rng.next_below(topo->num_nodes()));
    if (d == s) d = (d + 1) % topo->num_nodes();
    WalkOptions options;
    options.seed = rng.next_u64();
    options.record_path = false;
    auto walk = walk_packet(*topo, *router, &scheme, s, d, options);
    if (!walk.delivered()) continue;
    const bool tampered = scheme.tamper_count() > 0;
    const auto named = identifier.observe(walk.packet, d);
    if (named.empty()) {
      ++detected;
    } else if (named.front() != s) {
      ++misattributed;
      ++tampered_total;
    }
    (void)tampered;
  }
  EXPECT_GT(detected, 100);        // tampering flagged
  EXPECT_LT(misattributed, 10);    // essentially never silently misled
}

}  // namespace
}  // namespace ddpm::mark
