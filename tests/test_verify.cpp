// Unit coverage for the static design-space verifier (src/verify): the
// CDG builder's classic verdicts, the escape-subnetwork proof, the
// declaration gate, the marking-invariant/injectivity checkers, the
// Tables 1-3 certification and the report renderers.
#include <gtest/gtest.h>

#include <stdexcept>

#include "routing/deadlock.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"
#include "verify/cdg.hpp"
#include "verify/design_space.hpp"
#include "verify/invariant.hpp"
#include "verify/width_cert.hpp"

namespace verify = ddpm::verify;
namespace route = ddpm::route;
namespace topo = ddpm::topo;

namespace {

verify::CdgResult cdg_of(const std::string& spec, const std::string& router) {
  const auto t = topo::make_topology(spec);
  const auto r = route::make_router(router, *t);
  return verify::build_cdg(*t, *r);
}

TEST(Cdg, DimensionOrderOnMeshIsAcyclic) {
  const auto result = cdg_of("mesh:4x4", "dor");
  EXPECT_FALSE(result.cyclic);
  EXPECT_TRUE(result.cycle.empty());
  EXPECT_EQ(result.channels, 2u * 24u);  // 24 undirected links
  EXPECT_GT(result.dependencies, 0u);
}

TEST(Cdg, DimensionOrderOnTorusIsCyclicWithWitness) {
  const auto result = cdg_of("torus:4x4", "dor");
  EXPECT_TRUE(result.cyclic);
  // The witness is a real loop of named channels (the wrap ring).
  ASSERT_GE(result.cycle.size(), 3u);
}

TEST(Cdg, UnrestrictedAdaptiveOnMeshIsCyclic) {
  // The intentionally unrestricted minimal-adaptive router admits every
  // turn — the classic deadlockable config the verifier must convict.
  EXPECT_TRUE(cdg_of("mesh:4x4", "adaptive").cyclic);
  EXPECT_TRUE(cdg_of("mesh:4x4", "adaptive-misroute").cyclic);
}

TEST(Cdg, TurnModelsOnMeshAreAcyclic) {
  EXPECT_FALSE(cdg_of("mesh:4x4", "west-first").cyclic);
  EXPECT_FALSE(cdg_of("mesh:4x4", "north-last").cyclic);
  EXPECT_FALSE(cdg_of("mesh:4x4", "negative-first").cyclic);
}

TEST(Cdg, EscapeSubnetworkIsAcyclicOnEveryVerifiedTopology) {
  for (const std::string& spec : verify::cdg_topologies()) {
    const auto t = topo::make_topology(spec);
    const auto escape = verify::build_escape_cdg(*t);
    EXPECT_FALSE(escape.cyclic) << spec;
  }
}

TEST(Cdg, HypercubeDimensionOrderIsAcyclic) {
  EXPECT_FALSE(cdg_of("hypercube:4", "dor").cyclic);
}

TEST(DeadlockClass, DeclarationsMatchTheClassicResults) {
  const auto mesh = topo::make_topology("mesh:4x4");
  const auto torus = topo::make_topology("torus:4x4");
  EXPECT_EQ(route::declared_deadlock_class("dor", *mesh),
            route::DeadlockClass::kAcyclic);
  EXPECT_EQ(route::declared_deadlock_class("dor", *torus),
            route::DeadlockClass::kNeedsEscapeVcs);
  EXPECT_EQ(route::declared_deadlock_class("west-first", *mesh),
            route::DeadlockClass::kAcyclic);
  EXPECT_EQ(route::declared_deadlock_class("adaptive", *mesh),
            route::DeadlockClass::kNeedsEscapeVcs);
  EXPECT_EQ(route::declared_deadlock_class("valiant", *torus),
            route::DeadlockClass::kNeedsEscapeVcs);
  // Unvetted names get the conservative default.
  EXPECT_EQ(route::declared_deadlock_class("experimental", *mesh),
            route::DeadlockClass::kNeedsEscapeVcs);
}

TEST(DeadlockClass, GateThrowsExactlyWhenEscapeVcsAreMissing) {
  const auto mesh = topo::make_topology("mesh:4x4");
  const auto adaptive = route::make_router("adaptive", *mesh);
  const auto dor = route::make_router("dor", *mesh);
  EXPECT_THROW(route::require_deadlock_safe(*adaptive, false),
               std::invalid_argument);
  EXPECT_NO_THROW(route::require_deadlock_safe(*adaptive, true));
  EXPECT_NO_THROW(route::require_deadlock_safe(*dor, false));
}

TEST(DesignSpace, EveryFactoryComboPassesAndACycleWasFound) {
  const auto verdicts = verify::run_cdg_suite();
  EXPECT_EQ(verdicts.size(),
            verify::cdg_topologies().size() * verify::cdg_routers().size());
  bool saw_cyclic_supported = false;
  bool saw_unsupported = false;
  for (const auto& v : verdicts) {
    EXPECT_TRUE(v.pass) << v.topology << " x " << v.router << ": " << v.note;
    saw_cyclic_supported |= (v.supported && v.cyclic);
    saw_unsupported |= !v.supported;  // turn models off the 2-D mesh
  }
  EXPECT_TRUE(saw_cyclic_supported);
  EXPECT_TRUE(saw_unsupported);
}

TEST(Invariant, HoldsExhaustivelyOnSmallRadices) {
  for (const char* spec : {"mesh:4x4", "torus:5x5", "hypercube:4"}) {
    const auto t = topo::make_topology(spec);
    const auto v = verify::check_invariant(*t);
    EXPECT_TRUE(v.pass) << spec << ": " << v.note;
    EXPECT_TRUE(v.exhaustive_pairs) << spec;
    EXPECT_TRUE(v.codec_roundtrip) << spec;
    EXPECT_EQ(v.pairs,
              std::uint64_t(t->num_nodes()) * std::uint64_t(t->num_nodes()))
        << spec;
    EXPECT_GT(v.hops, v.pairs) << spec;
  }
}

TEST(Invariant, SampledRegimeAboveTheExhaustiveBound) {
  verify::InvariantOptions opt;
  opt.sampled_pairs = 64;
  const auto t = topo::make_topology("mesh:32x32");
  const auto v = verify::check_invariant(*t, opt);
  EXPECT_TRUE(v.pass) << v.note;
  EXPECT_FALSE(v.exhaustive_pairs);
  EXPECT_EQ(v.pairs, 64u);
}

TEST(Injectivity, ExhaustiveOnSmallTopologies) {
  for (const char* spec : {"mesh:8x8", "torus:8x8", "hypercube:8"}) {
    const auto t = topo::make_topology(spec);
    const auto v = verify::check_injectivity(*t);
    EXPECT_TRUE(v.pass) << spec << ": " << v.note;
    EXPECT_TRUE(v.exhaustive) << spec;
  }
}

TEST(WidthCert, AllChecksPass) {
  const auto verdicts = verify::certify_widths();
  ASSERT_GE(verdicts.size(), 7u);
  for (const auto& v : verdicts) {
    EXPECT_TRUE(v.pass) << v.check << ": " << v.note;
  }
  // The three paper tables are certified under stable check ids.
  for (const char* id : {"table1-simple-ppm", "table2-bitdiff-ppm",
                         "table3-ddpm", "factory-overflow"}) {
    bool found = false;
    for (const auto& v : verdicts) found |= (v.check == id);
    EXPECT_TRUE(found) << id;
  }
}

TEST(Report, JsonAndMarkdownRenderDeterministically) {
  verify::Report report;
  report.width = verify::certify_widths();
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"tool\": \"ddpm_verify\""), std::string::npos);
  EXPECT_NE(json.find("\"all_pass\": true"), std::string::npos);
  EXPECT_EQ(json, report.to_json());
  const std::string md = report.to_markdown();
  EXPECT_NE(md.find("### Field-width certification"), std::string::npos);
  EXPECT_NE(md.find("| table3-ddpm |"), std::string::npos);
}

}  // namespace
