// End-to-end acceptance for the streaming subsystem (ISSUE 8): a
// 100k-distinct-source spoofed flood streamed through the sketch analyzer
// must be detected promptly, the victim named, and the sketch footprint
// must stay inside the 4 MiB budget. CI runs the 1M-source variant via
// the flow_replay example in the perf job; this tier-1 test keeps the
// sanitizer matrix fast while pinning the same contract.
#include <gtest/gtest.h>

#include "flow/trace_gen.hpp"
#include "stream/flow_analyzer.hpp"

namespace ddpm::stream {
namespace {

constexpr std::size_t kMemoryBudget = 4u << 20;  // 4 MiB

flow::TraceGenConfig hundred_k_flood() {
  flow::TraceGenConfig gen;
  gen.seed = 2024;
  gen.benign_sources = 10'000;
  gen.attack = flow::AttackShape::kFlood;
  gen.attack_sources = 100'000;
  gen.attack_start = 200'000;
  gen.attack_duration = 600'000;
  gen.duration = 1'000'000;
  // Cover the source pool: >= attack_sources flows over the attack phase.
  gen.attack_rate = 1.25 * double(gen.attack_sources) / double(gen.attack_duration);
  return gen;
}

TEST(FlowReplayAcceptance, HundredKSourceFloodDetectedWithinBudget) {
  const flow::TraceGenConfig gen = hundred_k_flood();
  flow::TraceGenerator source(gen);
  FlowAnalyzerConfig config;
  const StreamReport report = replay(source, config);

  // Scale sanity: the trace really exercised ~100k distinct sources.
  EXPECT_GT(report.records, 100'000u);

  ASSERT_TRUE(report.detection_time.has_value());
  const netsim::SimTime latency = *report.detection_time - gen.attack_start;
  EXPECT_LE(latency, 2 * config.window) << "detection latency too high";

  EXPECT_TRUE(report.victim_identified);
  EXPECT_EQ(report.victim, gen.victim);
  EXPECT_GT(report.victim_share, config.hh_share);

  EXPECT_LE(report.memory_bytes, kMemoryBudget);
}

TEST(FlowReplayAcceptance, PulseAndChurnAlsoDetected) {
  for (const flow::AttackShape shape :
       {flow::AttackShape::kPulse, flow::AttackShape::kChurn}) {
    flow::TraceGenConfig gen = hundred_k_flood();
    gen.attack = shape;
    gen.attack_sources = 20'000;
    gen.duration = 600'000;
    gen.attack_duration = 300'000;
    flow::TraceGenerator source(gen);
    const StreamReport report = replay(source, FlowAnalyzerConfig{});
    ASSERT_TRUE(report.detection_time.has_value()) << int(shape);
    EXPECT_TRUE(report.victim_identified) << int(shape);
    EXPECT_EQ(report.victim, gen.victim) << int(shape);
    EXPECT_LE(report.memory_bytes, kMemoryBudget);
  }
}

TEST(FlowReplayAcceptance, BenignBaselineStaysQuiet) {
  flow::TraceGenConfig gen = hundred_k_flood();
  gen.attack = flow::AttackShape::kNone;
  gen.duration = 500'000;
  flow::TraceGenerator source(gen);
  const StreamReport report = replay(source, FlowAnalyzerConfig{});
  EXPECT_FALSE(report.detection_time.has_value());
  EXPECT_FALSE(report.victim_identified);
}

}  // namespace
}  // namespace ddpm::stream
