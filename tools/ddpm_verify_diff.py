#!/usr/bin/env python3
"""Ratchet gate for the static design-space verifier's verdicts.

The `verify` CI job runs `ddpm_verify --all --json verify.json` and calls
this script to diff the verdicts against the committed baseline
(tools/ddpm_verify_baseline.json). The comparison projects each verdict
row onto its STABLE fields — identities and booleans, not counters or
free-text notes — so refactors that change dependency counts or wording
don't churn the baseline, while any change to a verdict's outcome
(a combo turning cyclic, a table row drifting, a new/removed combo) fails
the job until the baseline is regenerated deliberately with --update.

Any verdict with pass == false fails the gate regardless of the baseline:
the baseline records the shape of the design space, never a tolerated
failure.

--only SECTION[,SECTION...] scopes the diff to the named sections (e.g. a
CI job that runs `ddpm_verify --model` alone diffs with --only model):
out-of-scope baseline entries are neither compared nor reported as
removed. --only cannot be combined with --update — a scoped update would
drop every other section from the baseline.

Usage:
  tools/ddpm_verify_diff.py VERIFY_JSON [--baseline FILE] [--update]
      [--only SECTION[,SECTION...]]

Exit codes: 0 = verdicts match baseline and all pass, 1 = drift or
failures, 2 = usage/IO error.
"""
from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "ddpm_verify_baseline.json"

# Stable projection per section: (key fields, outcome fields).
PROJECTIONS = {
    "cdg": (("topology", "router"),
            ("supported", "declared", "cyclic", "escape_acyclic", "pass")),
    "invariant": (("topology",),
                  ("exhaustive_pairs", "codec_roundtrip", "holds", "pass")),
    "injectivity": (("topology",), ("exhaustive", "injective", "pass")),
    "width": (("check",), ("pass",)),
    "model": (("topology", "router", "vcs", "depth"),
              ("complete", "credit_conservation", "no_overflow", "no_loss",
               "escape_reachable", "bounded_progress", "pass")),
}


def project(report: dict) -> dict:
    out: dict[str, dict[str, dict]] = {}
    for section, (keys, fields) in PROJECTIONS.items():
        rows = {}
        for row in report.get(section, []):
            key = "|".join(str(row.get(k, "")) for k in keys)
            rows[key] = {f: row.get(f) for f in fields}
        out[section] = rows
    return out


def main(argv: list[str]) -> int:
    args: list[str] = []
    update = False
    only: set[str] | None = None
    baseline_path = DEFAULT_BASELINE
    it = iter(argv[1:])
    for a in it:
        if a == "--update":
            update = True
        elif a == "--only":
            value = next(it, None)
            if value is None:
                print("ddpm_verify_diff: --only needs a section list",
                      file=sys.stderr)
                return 2
            only = {s.strip() for s in value.split(",") if s.strip()}
            unknown = sorted(only - set(PROJECTIONS))
            if not only or unknown:
                what = ", ".join(unknown) if unknown else "(empty)"
                print(f"ddpm_verify_diff: --only names unknown section(s): "
                      f"{what}; known: {', '.join(PROJECTIONS)}",
                      file=sys.stderr)
                return 2
        elif a == "--baseline":
            value = next(it, None)
            if value is None:
                print("ddpm_verify_diff: --baseline needs a path",
                      file=sys.stderr)
                return 2
            baseline_path = Path(value)
        elif a.startswith("--"):
            print(f"ddpm_verify_diff: unknown option {a}", file=sys.stderr)
            return 2
        else:
            args.append(a)
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    verify_path = Path(args[0])
    if not verify_path.is_file():
        print(f"ddpm_verify_diff: {verify_path} not found", file=sys.stderr)
        return 2

    if update and only is not None:
        print("ddpm_verify_diff: --update cannot be combined with --only "
              "(a scoped update would drop the other sections' baseline "
              "entries)", file=sys.stderr)
        return 2

    report = json.loads(verify_path.read_text(encoding="utf-8"))
    current = project(report)
    if only is not None:
        current = {s: rows for s, rows in current.items() if s in only}

    failures = 0
    for section, rows in current.items():
        for key, fields in rows.items():
            if fields.get("pass") is not True:
                print(f"FAIL {section} {key}: pass={fields.get('pass')}")
                failures += 1

    if update:
        baseline_path.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"ddpm_verify_diff: baseline written to {baseline_path}")
        return 1 if failures else 0

    if not baseline_path.is_file():
        print(f"ddpm_verify_diff: no baseline at {baseline_path}; "
              "run with --update to create it", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))

    drift = 0
    for section in PROJECTIONS:
        if only is not None and section not in only:
            continue
        base_rows = baseline.get(section, {})
        cur_rows = current.get(section, {})
        for key in sorted(set(base_rows) | set(cur_rows)):
            if key not in cur_rows:
                print(f"REMOVED {section} {key} (in baseline, not in report)")
                drift += 1
            elif key not in base_rows:
                print(f"ADDED   {section} {key} (not in baseline)")
                drift += 1
            elif base_rows[key] != cur_rows[key]:
                print(f"CHANGED {section} {key}: "
                      f"{base_rows[key]} -> {cur_rows[key]}")
                drift += 1

    total_rows = sum(len(v) for v in current.values())
    if drift or failures:
        print(f"ddpm_verify_diff: {drift} drifted, {failures} failing "
              f"of {total_rows} verdicts (regenerate with --update if "
              "intentional)", file=sys.stderr)
        return 1
    print(f"ddpm_verify_diff: {total_rows} verdicts match the baseline, "
          "all passing")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
