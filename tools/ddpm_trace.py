#!/usr/bin/env python3
"""Validator / summarizer for Chrome trace_event JSON emitted by the
telemetry tracer (ddpm_sim --trace, or telemetry::Tracer::flush anywhere).

Validation (the `trace_valid` ctest gate; exit 0 = valid, 1 = broken):

  * the document is a JSON object with a `traceEvents` array;
  * every event carries `name`, `ph`, `ts`, `pid` with the right types;
  * phases are limited to the set the tracer emits:
      X (complete, requires non-negative `dur`), i (instant),
      C (counter, requires an `args` object), M (metadata);
  * non-metadata timestamps are non-decreasing (the simulators' clocks are
    monotonic and the ring flushes oldest-first, so disorder means a bug);
  * `otherData.recorded` / `otherData.dropped`, when present, are
    consistent with the retained event count.

Summary (--summary) prints per-lane and per-name counts, span duration
statistics, and counter-track ranges — a quick look at a run without
opening chrome://tracing.

Usage: tools/ddpm_trace.py trace.json [--summary]
"""
from __future__ import annotations

import json
import sys
from collections import Counter, defaultdict
from pathlib import Path

PHASES = {"X", "i", "C", "M"}


def fail(message: str) -> int:
    print(f"ddpm_trace: INVALID: {message}", file=sys.stderr)
    return 1


def validate(doc: object, path: Path) -> tuple[int, list[dict]]:
    if not isinstance(doc, dict):
        return fail(f"{path}: top level is {type(doc).__name__}, want object"), []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(f"{path}: missing traceEvents array"), []

    last_ts = None
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            return fail(f"{where}: not an object"), []
        for key, kind in (("name", str), ("ph", str)):
            if not isinstance(ev.get(key), kind):
                return fail(f"{where}: bad or missing '{key}'"), []
        ph = ev["ph"]
        if ph not in PHASES:
            return fail(f"{where}: unknown phase {ph!r}"), []
        if ph == "M":
            continue  # metadata events carry no timeline semantics
        if not isinstance(ev.get("ts"), (int, float)):
            return fail(f"{where}: bad or missing 'ts'"), []
        if not isinstance(ev.get("pid"), int):
            return fail(f"{where}: bad or missing 'pid'"), []
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(f"{where}: complete event needs non-negative 'dur'"), []
        if ph == "C" and not isinstance(ev.get("args"), dict):
            return fail(f"{where}: counter event needs an 'args' object"), []
        if last_ts is not None and ev["ts"] < last_ts:
            return fail(
                f"{where}: ts went backwards ({ev['ts']} after {last_ts})"
            ), []
        last_ts = ev["ts"]

    other = doc.get("otherData", {})
    if isinstance(other, dict) and "recorded" in other:
        retained = sum(1 for ev in events if ev.get("ph") != "M")
        recorded = other.get("recorded", 0)
        dropped = other.get("dropped", 0)
        if recorded != retained + dropped:
            return fail(
                f"{path}: otherData says recorded={recorded} dropped={dropped}"
                f" but {retained} events are retained"
            ), []
    return 0, events


def summarize(events: list[dict]) -> None:
    timeline = [ev for ev in events if ev.get("ph") != "M"]
    lanes: dict[int, Counter] = defaultdict(Counter)
    durations: dict[str, list[float]] = defaultdict(list)
    counters: dict[str, list[float]] = defaultdict(list)
    for ev in timeline:
        lanes[ev["pid"]][ev["name"]] += 1
        if ev["ph"] == "X":
            durations[ev["name"]].append(float(ev["dur"]))
        elif ev["ph"] == "C":
            value = ev.get("args", {}).get("value")
            if isinstance(value, (int, float)):
                counters[ev["name"]].append(float(value))

    names = {
        ev.get("args", {}).get("name"): ev.get("pid")
        for ev in events
        if ev.get("ph") == "M" and ev.get("name") == "process_name"
    }
    lane_name = {pid: label for label, pid in names.items() if label}

    span = (
        f"{timeline[0]['ts']}..{timeline[-1]['ts']} us" if timeline else "empty"
    )
    print(f"{len(timeline)} events, {span}")
    for pid in sorted(lanes):
        label = lane_name.get(pid, f"pid {pid}")
        total = sum(lanes[pid].values())
        print(f"  [{label}] {total} events")
        for name, count in lanes[pid].most_common():
            print(f"    {name:<28} {count}")
    if durations:
        print("span durations (us):")
        for name in sorted(durations):
            ds = durations[name]
            print(
                f"  {name:<28} n={len(ds)} mean={sum(ds) / len(ds):.1f}"
                f" max={max(ds):.0f}"
            )
    if counters:
        print("counter tracks:")
        for name in sorted(counters):
            vs = counters[name]
            print(
                f"  {name:<28} n={len(vs)} min={min(vs):.0f} max={max(vs):.0f}"
                f" last={vs[-1]:.0f}"
            )


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--summary"]
    want_summary = "--summary" in argv[1:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    path = Path(args[0])
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        return fail(f"{path}: {err}")
    status, events = validate(doc, path)
    if status != 0:
        return status
    if want_summary:
        summarize(events)
    else:
        timeline = sum(1 for ev in events if ev.get("ph") != "M")
        print(f"ddpm_trace: valid ({timeline} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
