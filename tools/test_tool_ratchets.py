#!/usr/bin/env python3
"""Unit tests for the ratchet tooling itself (registered as ctest
`tool_ratchet_unit`).

Covers tools/ddpm_bench_diff.py (relative tolerance, direction-per-unit,
missing metrics, the absolute floors mechanism and its --floor override)
and tools/ddpm_verify_diff.py (verdict projection, drift detection,
pass=false gating, --update regeneration). Everything runs the real
scripts as subprocesses against temp files, so the exit codes tested
here are exactly what CI sees.

Run directly (python3 tools/test_tool_ratchets.py) or via ctest.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
BENCH_DIFF = os.path.join(TOOLS_DIR, "ddpm_bench_diff.py")
VERIFY_DIFF = os.path.join(TOOLS_DIR, "ddpm_verify_diff.py")


def run(script, *args):
    return subprocess.run([sys.executable, script, *list(args)],
                          capture_output=True, text=True)


def write_json(directory, name, doc):
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return path


BENCH_DOC = {
    "bench": "kernel",
    "compiler": "GNU 12.2.0",
    "build_type": "Release",
    "mode": "full",
    "jobs": 1,
    "results": [
        {"name": "eq_churn", "value": 5.0e6, "unit": "ops/s"},
        {"name": "sweep_serial", "value": 3.3, "unit": "s"},
        {"name": "sweep_speedup", "value": 1.01, "unit": "x"},
    ],
    "floors": {"sweep_speedup": 0.99},
}


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.base = write_json(self.tmp.name, "base.json", BENCH_DOC)

    def current(self, mutate=None, **overrides):
        doc = copy.deepcopy(BENCH_DOC)
        doc.update(overrides)
        if mutate:
            mutate(doc)
        return write_json(self.tmp.name, "cur.json", doc)

    def set_metric(self, doc, name, value):
        for r in doc["results"]:
            if r["name"] == name:
                r["value"] = value
                return
        raise KeyError(name)

    def test_identical_accepts(self):
        p = run(BENCH_DIFF, self.base, self.current())
        self.assertEqual(p.returncode, 0, p.stderr)
        self.assertIn("ratchet holds", p.stdout)

    def test_regression_beyond_tolerance_rejects(self):
        cur = self.current(
            mutate=lambda d: self.set_metric(d, "eq_churn", 4.0e6))  # -20%
        p = run(BENCH_DIFF, self.base, cur)
        self.assertEqual(p.returncode, 1)
        self.assertIn("eq_churn", p.stderr)

    def test_regression_within_tolerance_accepts(self):
        cur = self.current(
            mutate=lambda d: self.set_metric(d, "eq_churn", 4.7e6))  # -6%
        p = run(BENCH_DIFF, self.base, cur)
        self.assertEqual(p.returncode, 0, p.stderr)

    def test_improvement_of_any_size_accepts(self):
        cur = self.current(
            mutate=lambda d: self.set_metric(d, "eq_churn", 5.0e7))
        p = run(BENCH_DIFF, self.base, cur)
        self.assertEqual(p.returncode, 0, p.stderr)

    def test_duration_direction_is_lower_better(self):
        cur = self.current(
            mutate=lambda d: self.set_metric(d, "sweep_serial", 4.0))  # +21%
        p = run(BENCH_DIFF, self.base, cur)
        self.assertEqual(p.returncode, 1)
        self.assertIn("sweep_serial", p.stderr)

    def test_metric_missing_from_current_warns_but_accepts(self):
        cur = self.current(mutate=lambda d: d["results"].pop(0))  # eq_churn
        p = run(BENCH_DIFF, self.base, cur)
        self.assertEqual(p.returncode, 0, p.stderr)
        self.assertIn("present in baseline only", p.stdout)

    def test_new_metric_in_current_accepts(self):
        cur = self.current(mutate=lambda d: d["results"].append(
            {"name": "brand_new", "value": 1.0, "unit": "ops/s"}))
        p = run(BENCH_DIFF, self.base, cur)
        self.assertEqual(p.returncode, 0, p.stderr)
        self.assertIn("new metric", p.stdout)

    def test_floor_breach_rejects_even_within_tolerance(self):
        # -6% is inside the 10% tolerance, but 0.95 < floor 0.99.
        cur = self.current(
            mutate=lambda d: self.set_metric(d, "sweep_speedup", 0.95))
        p = run(BENCH_DIFF, self.base, cur)
        self.assertEqual(p.returncode, 1)
        self.assertIn("FLOOR VIOLATION", p.stdout)

    def test_floor_satisfied_accepts(self):
        cur = self.current(
            mutate=lambda d: self.set_metric(d, "sweep_speedup", 0.995))
        p = run(BENCH_DIFF, self.base, cur)
        self.assertEqual(p.returncode, 0, p.stderr)

    def test_cli_floor_overrides_baseline(self):
        p = run(BENCH_DIFF, self.base, self.current(),
                "--floor", "sweep_speedup=1.5")
        self.assertEqual(p.returncode, 1)
        self.assertIn("FLOOR VIOLATION", p.stdout)

    def test_cli_floor_on_duration_is_a_ceiling(self):
        p = run(BENCH_DIFF, self.base, self.current(),
                "--floor", "sweep_serial=1.0")
        self.assertEqual(p.returncode, 1)
        self.assertIn("ceiling", p.stdout)

    def test_malformed_floor_spec_is_usage_error(self):
        p = run(BENCH_DIFF, self.base, self.current(), "--floor", "nonsense")
        self.assertEqual(p.returncode, 2)

    def test_floored_metric_missing_from_current_warns(self):
        def drop_speedup(doc):
            doc["results"] = [r for r in doc["results"]
                              if r["name"] != "sweep_speedup"]
        p = run(BENCH_DIFF, self.base, self.current(mutate=drop_speedup))
        self.assertEqual(p.returncode, 0, p.stderr)
        self.assertIn("floored metric 'sweep_speedup' missing", p.stdout)

    def test_provenance_mismatch_warns_but_accepts(self):
        p = run(BENCH_DIFF, self.base, self.current(build_type="Debug"))
        self.assertEqual(p.returncode, 0, p.stderr)
        self.assertIn("provenance mismatch", p.stdout)

    def test_unreadable_input_is_usage_error(self):
        p = run(BENCH_DIFF, self.base,
                os.path.join(self.tmp.name, "missing.json"))
        self.assertNotEqual(p.returncode, 0)
        self.assertIn("cannot read", p.stderr + p.stdout)


VERIFY_DOC = {
    "cdg": [
        {"topology": "torus:4x4", "router": "dor", "supported": True,
         "declared": True, "cyclic": False, "escape_acyclic": True,
         "pass": True, "dependencies": 123, "note": "free text"},
    ],
    "invariant": [
        {"topology": "mesh:4x4", "exhaustive_pairs": True,
         "codec_roundtrip": True, "holds": True, "pass": True},
    ],
    "injectivity": [
        {"topology": "hypercube:16", "exhaustive": True, "injective": True,
         "pass": True},
    ],
    "width": [
        {"check": "marking-field", "pass": True},
    ],
    "model": [
        {"topology": "mesh:2x2", "router": "dor", "vcs": 2, "depth": 1,
         "states": 29120, "transitions": 49364, "complete": True,
         "credit_conservation": True, "no_overflow": True, "no_loss": True,
         "escape_reachable": True, "bounded_progress": True, "pass": True,
         "note": "free text"},
    ],
}


class VerifyDiffTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.baseline = os.path.join(self.tmp.name, "baseline.json")
        report = write_json(self.tmp.name, "seed.json", VERIFY_DOC)
        p = run(VERIFY_DIFF, report, "--baseline", self.baseline, "--update")
        assert p.returncode == 0, p.stderr

    def check(self, doc):
        report = write_json(self.tmp.name, "report.json", doc)
        return run(VERIFY_DIFF, report, "--baseline", self.baseline)

    def test_matching_report_accepts(self):
        p = self.check(VERIFY_DOC)
        self.assertEqual(p.returncode, 0, p.stderr)
        self.assertIn("match the baseline", p.stdout)

    def test_failing_verdict_rejects_even_if_baselined(self):
        doc = copy.deepcopy(VERIFY_DOC)
        doc["width"][0]["pass"] = False
        report = write_json(self.tmp.name, "failing.json", doc)
        # Baseline the failing shape, then diff against it: pass=false must
        # still fail — the baseline never records a tolerated failure.
        bad_baseline = os.path.join(self.tmp.name, "bad_baseline.json")
        run(VERIFY_DIFF, report, "--baseline", bad_baseline, "--update")
        p = run(VERIFY_DIFF, report, "--baseline", bad_baseline)
        self.assertEqual(p.returncode, 1)
        self.assertIn("FAIL width", p.stdout)

    def test_changed_outcome_is_drift(self):
        doc = copy.deepcopy(VERIFY_DOC)
        doc["cdg"][0]["cyclic"] = True
        doc["cdg"][0]["pass"] = True  # outcome changed, still "passing"
        p = self.check(doc)
        self.assertEqual(p.returncode, 1)
        self.assertIn("CHANGED cdg", p.stdout)

    def test_unstable_fields_do_not_drift(self):
        doc = copy.deepcopy(VERIFY_DOC)
        doc["cdg"][0]["dependencies"] = 9999  # counter: not projected
        doc["cdg"][0]["note"] = "reworded"    # free text: not projected
        p = self.check(doc)
        self.assertEqual(p.returncode, 0, p.stderr)

    def test_added_and_removed_rows_are_drift(self):
        doc = copy.deepcopy(VERIFY_DOC)
        doc["cdg"].append({"topology": "torus:8x8", "router": "adaptive",
                           "supported": True, "declared": True,
                           "cyclic": False, "escape_acyclic": True,
                           "pass": True})
        del doc["injectivity"][0]
        p = self.check(doc)
        self.assertEqual(p.returncode, 1)
        self.assertIn("ADDED   cdg", p.stdout)
        self.assertIn("REMOVED injectivity", p.stdout)

    def test_missing_baseline_rejects_with_hint(self):
        report = write_json(self.tmp.name, "r.json", VERIFY_DOC)
        p = run(VERIFY_DIFF, report, "--baseline",
                os.path.join(self.tmp.name, "nonexistent.json"))
        self.assertEqual(p.returncode, 1)
        self.assertIn("--update", p.stderr)

    def test_missing_report_is_usage_error(self):
        p = run(VERIFY_DIFF, os.path.join(self.tmp.name, "nope.json"),
                "--baseline", self.baseline)
        self.assertEqual(p.returncode, 2)

    def test_only_scopes_the_diff_to_named_sections(self):
        # A model-only report (ddpm_verify --model) would drift every other
        # section as REMOVED without scoping; --only model diffs cleanly.
        doc = {"model": copy.deepcopy(VERIFY_DOC["model"])}
        report = write_json(self.tmp.name, "model_only.json", doc)
        p = run(VERIFY_DIFF, report, "--baseline", self.baseline)
        self.assertEqual(p.returncode, 1)
        self.assertIn("REMOVED", p.stdout)
        p = run(VERIFY_DIFF, report, "--baseline", self.baseline,
                "--only", "model")
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertIn("match the baseline", p.stdout)

    def test_only_still_catches_model_drift(self):
        doc = {"model": copy.deepcopy(VERIFY_DOC["model"])}
        doc["model"][0]["bounded_progress"] = False
        doc["model"][0]["pass"] = True  # outcome changed, still "passing"
        report = write_json(self.tmp.name, "model_drift.json", doc)
        p = run(VERIFY_DIFF, report, "--baseline", self.baseline,
                "--only", "model")
        self.assertEqual(p.returncode, 1)
        self.assertIn("CHANGED model", p.stdout)

    def test_only_unknown_section_is_usage_error(self):
        report = write_json(self.tmp.name, "r2.json", VERIFY_DOC)
        p = run(VERIFY_DIFF, report, "--baseline", self.baseline,
                "--only", "nope")
        self.assertEqual(p.returncode, 2)
        self.assertIn("unknown section", p.stderr)

    def test_only_cannot_update_the_baseline(self):
        report = write_json(self.tmp.name, "r3.json", VERIFY_DOC)
        p = run(VERIFY_DIFF, report, "--baseline", self.baseline,
                "--only", "model", "--update")
        self.assertEqual(p.returncode, 2)

    def test_update_writes_projected_baseline(self):
        with open(self.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        self.assertEqual(set(baseline),
                         {"cdg", "invariant", "injectivity", "width",
                          "model"})
        row = baseline["cdg"]["torus:4x4|dor"]
        self.assertNotIn("dependencies", row)  # counters are projected out
        self.assertIs(row["pass"], True)


ANALYZE = os.path.join(TOOLS_DIR, "ddpm_analyze.py")

# Two violations of two different rules inside one DDPM_HOT function: the
# smallest tree that lets the tests tell "scoped out" apart from "fixed".
HOT_FIXTURE = """\
#include <sstream>

#define DDPM_HOT

namespace fix {

DDPM_HOT int hot_entry(int a, int b) {
  int q = a / b;
  std::ostringstream os;
  os << q;
  return q;
}

}  // namespace fix
"""


class AnalyzeTest(unittest.TestCase):
    """CLI tests for ddpm_analyze --only and --facts-cache against a
    minimal synthetic repo (one hot function, two rule violations)."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        os.mkdir(os.path.join(self.tmp.name, "src"))
        self.source = os.path.join(self.tmp.name, "src", "hot.cpp")
        self.write_source(HOT_FIXTURE)

    def write_source(self, text):
        with open(self.source, "w", encoding="utf-8") as fh:
            fh.write(text)

    def analyze(self, *args):
        return run(ANALYZE, "--frontend", "textual",
                   "--baseline", "baseline.json", self.tmp.name, *args)

    def test_unscoped_run_reports_both_rules(self):
        p = self.analyze()
        self.assertEqual(p.returncode, 1)
        self.assertIn("hot-no-div", p.stdout)
        self.assertIn("hot-no-throw-io", p.stdout)

    def test_only_restricts_to_the_named_rule(self):
        p = self.analyze("--only", "hot-no-div")
        self.assertEqual(p.returncode, 1)
        self.assertIn("hot-no-div", p.stdout)
        self.assertNotIn("hot-no-throw-io", p.stdout)

    def test_only_rule_without_findings_is_clean(self):
        p = self.analyze("--only", "hot-no-lock")
        self.assertEqual(p.returncode, 0, p.stderr)
        self.assertIn("clean", p.stdout)

    def test_only_accepts_a_comma_separated_list(self):
        p = self.analyze("--only", "hot-no-div,hot-no-throw-io")
        self.assertEqual(p.returncode, 1)
        self.assertIn("hot-no-div", p.stdout)
        self.assertIn("hot-no-throw-io", p.stdout)

    def test_only_unknown_rule_is_usage_error(self):
        p = self.analyze("--only", "no-such-rule")
        self.assertEqual(p.returncode, 2)
        self.assertIn("unknown rule", p.stderr)
        self.assertIn("known rules", p.stderr)

    def test_only_empty_list_is_usage_error(self):
        p = self.analyze("--only", ",")
        self.assertEqual(p.returncode, 2)

    def test_only_cannot_update_the_baseline(self):
        p = self.analyze("--only", "hot-no-div", "--update-baseline")
        self.assertEqual(p.returncode, 2)
        self.assertIn("--update-baseline", p.stderr)

    def test_facts_cache_hits_on_identical_tree(self):
        cache = os.path.join(self.tmp.name, "facts.cache")
        cold = self.analyze("--facts-cache", cache)
        self.assertEqual(cold.returncode, 1)
        self.assertNotIn("facts cache hit", cold.stdout)
        self.assertTrue(os.path.exists(cache))
        warm = self.analyze("--facts-cache", cache)
        self.assertEqual(warm.returncode, 1)
        self.assertIn("facts cache hit", warm.stdout)
        # Findings (and their fingerprints) must be byte-identical.
        pick = lambda out: sorted(  # noqa: E731
            ln for ln in out.splitlines() if "[hot-" in ln)
        self.assertEqual(pick(cold.stdout), pick(warm.stdout))

    def test_facts_cache_invalidates_when_a_file_changes(self):
        cache = os.path.join(self.tmp.name, "facts.cache")
        self.analyze("--facts-cache", cache)
        self.write_source(HOT_FIXTURE.replace("a / b", "a >> 1"))
        p = self.analyze("--facts-cache", cache)
        self.assertEqual(p.returncode, 1)
        self.assertNotIn("facts cache hit", p.stdout)
        self.assertNotIn("hot-no-div", p.stdout)  # stale facts would flag it
        self.assertIn("hot-no-throw-io", p.stdout)

    def test_corrupt_cache_falls_back_to_a_cold_run(self):
        cache = os.path.join(self.tmp.name, "facts.cache")
        self.analyze("--facts-cache", cache)
        with open(cache, "wb") as fh:
            fh.write(b"not a pickle")
        p = self.analyze("--facts-cache", cache)
        self.assertEqual(p.returncode, 1)
        self.assertNotIn("facts cache hit", p.stdout)
        self.assertIn("hot-no-div", p.stdout)


if __name__ == "__main__":
    unittest.main()
