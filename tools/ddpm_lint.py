#!/usr/bin/env python3
"""Repo-invariant linter for the DDPM reproduction.

Enforces the project-specific rules that neither the compiler nor
clang-tidy knows about (registered as the `repo_lint` ctest):

  1. pragma-once     every header under src/, tests/, bench/ carries
                     `#pragma once` (library headers are included across
                     module boundaries; a missing guard is an ODR bomb).
  2. rng-containment no `rand()`, `srand(`, `random_device`, or
                     `std::mt19937` outside src/netsim/rng.* — every
                     stochastic component must draw from the seeded
                     xoshiro generator or the paper's determinism story
                     (identical tables run-to-run) falls apart.
  3. float-compare   no `==` / `!=` against floating-point literals in
                     src/netsim/stats.* and src/netsim/quantile.* —
                     accumulated statistics must be compared with
                     tolerances (integer counters are exempt).
  4. header-io       no <iostream>/<cstdio>/printf in library headers
                     (src/**/*.hpp): I/O belongs to drivers, benches and
                     the trace module's .cpp files, and <iostream> in a
                     header drags static init into every TU.
  5. no-using-std    no `using namespace std;` anywhere.
  6. netsim-no-std-function
                     no `std::function` (or <functional> include) in
                     src/netsim/ headers — the event kernel's hot path is
                     allocation-free by design (InlineAction); a
                     std::function sneaking back in silently reintroduces
                     a heap allocation per scheduled event.
  7. src-no-console  no std::cout/std::cerr/std::clog or printf-family
                     writes in src/ library code. Libraries report through
                     return values, the telemetry registry, or the tracer;
                     stdout/stderr belong to drivers (examples/, bench/,
                     tools). The contract layer's abort path is the
                     canonical suppressed exception.
  8. stream-no-ingest
                     no <fstream>, stringstream parsing, or string->number
                     conversion (stoi/stoul/strtol/atoi/sscanf/from_chars)
                     in src/stream/. The sketch library consumes FlowRecord
                     structs only; all trace ingestion and CSV parsing live
                     in src/flow/, keeping the DDPM_HOT sketch paths free
                     of I/O and locale machinery.
  9. shard-state-statics
                     any file that declares DDPM_SHARD_STATE members (see
                     src/core/shard_annotations.hpp) is a sharded parallel
                     surface; a mutable static in such a file is exactly
                     the cross-shard channel the annotation contract
                     promises not to have, so every mutable static there
                     must itself carry DDPM_SHARD_STATE on its line (or a
                     reviewed allow). Const/constexpr statics are exempt.
 10. required-docs   the tracked top-level documents (README.md,
                     ROADMAP.md, CHANGES.md, ISSUE.md, EXPERIMENTS.md,
                     DESIGN.md, PAPER.md) and docs/ARCHITECTURE.md exist
                     and are non-empty. Sessions hand work to each other
                     through these files; a deleted or emptied one breaks
                     the next session's context, so their presence is a
                     repo invariant, not a convention.

A line may opt out of one rule with an inline suppression comment naming
it, e.g. `#include <cstdio>  // ddpm-lint: allow(header-io)`. Suppressions
are deliberate, reviewable exceptions — the contract layer's abort path is
the canonical one. A suppression that no longer matches a violation on its
line (the offending code was fixed or moved, the comment stayed behind) is
itself reported as `stale-suppression`: dead allow() comments hide future
regressions. The summary line counts the suppressions still in use so the
exception budget stays visible in CI logs.

Usage: tools/ddpm_lint.py [repo-root]   (exit 0 = clean, 1 = violations)
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

Violation = tuple[Path, int, str, str]  # file, line, rule, message

ALLOW = re.compile(r"ddpm-lint:\s*allow\(([\w-]+)\)")

KNOWN_RULES = frozenset({
    "pragma-once", "rng-containment", "float-compare", "header-io",
    "no-using-std", "netsim-no-std-function", "src-no-console",
    "stream-no-ingest", "shard-state-statics", "required-docs",
})

# Documents every session relies on finding; see rule 8 in the docstring.
REQUIRED_DOCS = (
    "README.md", "ROADMAP.md", "CHANGES.md", "ISSUE.md", "EXPERIMENTS.md",
    "DESIGN.md", "PAPER.md", "docs/ARCHITECTURE.md",
)

# (path, line, rule) triples whose allow() comment actually silenced a
# violation during this run; filled by suppressed(), read by
# check_stale_suppressions.
_USED_SUPPRESSIONS: set[tuple[Path, int, str]] = set()


def suppressed(line: str, rule: str, path: Path | None = None,
               line_no: int = 0) -> bool:
    m = ALLOW.search(line)
    hit = m is not None and m.group(1) == rule
    if hit and path is not None:
        _USED_SUPPRESSIONS.add((path, line_no, rule))
    return hit


def strip_comments(line: str) -> str:
    """Best-effort removal of // comments (good enough for these rules)."""
    out = []
    i = 0
    in_string = False
    while i < len(line):
        ch = line[i]
        if in_string:
            if ch == "\\":
                i += 2
                continue
            if ch == '"':
                in_string = False
        else:
            if ch == '"':
                in_string = True
            elif ch == "/" and line[i : i + 2] == "//":
                break
        out.append(ch)
        i += 1
    return "".join(out)


def iter_source(root: Path, dirs: tuple[str, ...], suffixes: tuple[str, ...]):
    for d in dirs:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in suffixes and path.is_file():
                yield path


def check_pragma_once(root: Path) -> list[Violation]:
    out = []
    for path in iter_source(root, ("src", "tests", "bench"), (".hpp", ".h")):
        text = path.read_text(encoding="utf-8", errors="replace")
        if "#pragma once" not in text:
            out.append((path, 1, "pragma-once", "header lacks #pragma once"))
    return out


RNG_PATTERN = re.compile(
    r"(?<![\w:])(rand|srand)\s*\(|std::random_device|std::mt19937"
)


def check_rng_containment(root: Path) -> list[Violation]:
    out = []
    for path in iter_source(root, ("src",), (".hpp", ".cpp")):
        rel = path.relative_to(root).as_posix()
        if rel.startswith("src/netsim/rng."):
            continue
        for n, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            code = strip_comments(line)
            if RNG_PATTERN.search(code) and not suppressed(
                line, "rng-containment", path, n
            ):
                out.append(
                    (path, n, "rng-containment",
                     "raw RNG outside src/netsim/rng.* breaks seeded determinism")
                )
    return out


FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?"
FLOAT_EQ = re.compile(
    r"[!=]=\s*(?:%s)|(?:%s)\s*[!=]=" % (FLOAT_LITERAL, FLOAT_LITERAL)
)


def check_float_compare(root: Path) -> list[Violation]:
    out = []
    targets = [
        p
        for p in iter_source(root, ("src",), (".hpp", ".cpp"))
        if p.name.startswith(("stats.", "quantile."))
    ]
    for path in targets:
        for n, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            code = strip_comments(line)
            if FLOAT_EQ.search(code) and not suppressed(
                line, "float-compare", path, n
            ):
                out.append(
                    (path, n, "float-compare",
                     "exact floating-point comparison; use a tolerance")
                )
    return out


HEADER_IO = re.compile(r'#\s*include\s*<(iostream|cstdio|stdio\.h|print)>')


def check_header_io(root: Path) -> list[Violation]:
    out = []
    for path in iter_source(root, ("src",), (".hpp",)):
        for n, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            m = HEADER_IO.search(strip_comments(line))
            if m and not suppressed(line, "header-io", path, n):
                out.append(
                    (path, n, "header-io",
                     f"<{m.group(1)}> in a library header; include it in the .cpp")
                )
    return out


STD_FUNCTION = re.compile(r"std\s*::\s*function\s*<|#\s*include\s*<functional>")


def check_netsim_no_std_function(root: Path) -> list[Violation]:
    out = []
    for path in iter_source(root, ("src/netsim",), (".hpp", ".h")):
        for n, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            if STD_FUNCTION.search(strip_comments(line)) and not suppressed(
                line, "netsim-no-std-function", path, n
            ):
                out.append(
                    (path, n, "netsim-no-std-function",
                     "std::function in the event kernel allocates per event;"
                     " use netsim::InlineAction")
                )
    return out


CONSOLE_IO = re.compile(
    r"std\s*::\s*(cout|cerr|clog)\b"
    r"|(?:(?<![\w:])|std\s*::\s*)(printf|fprintf|puts|fputs)\s*\("
)


def check_src_no_console(root: Path) -> list[Violation]:
    out = []
    for path in iter_source(root, ("src",), (".hpp", ".cpp")):
        for n, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            m = CONSOLE_IO.search(strip_comments(line))
            if m and not suppressed(line, "src-no-console", path, n):
                name = m.group(1) or m.group(2)
                out.append(
                    (path, n, "src-no-console",
                     f"{name} in library code; report through telemetry or"
                     " return values, print from drivers")
                )
    return out


def check_using_namespace_std(root: Path) -> list[Violation]:
    pat = re.compile(r"using\s+namespace\s+std\s*;")
    out = []
    for path in iter_source(root, ("src", "tests", "bench", "examples"),
                            (".hpp", ".cpp")):
        for n, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            if pat.search(strip_comments(line)) and not suppressed(
                line, "no-using-std", path, n
            ):
                out.append((path, n, "no-using-std", "using namespace std"))
    return out


# Input-side machinery only: <sstream> stays legal because StreamReport
# serializes itself with an ostringstream — the rule guards ingestion, not
# output formatting.
STREAM_INGEST = re.compile(
    r"#\s*include\s*<(?:fstream|charconv|cstdio|stdio\.h)>"
    r"|\b(?:ifstream|fstream|istringstream)\b"
    r"|(?:(?<![\w:])|std\s*::\s*)"
    r"(?:stoi|stoul|stoull|stol|stoll|stod|stof|from_chars|"
    r"strtol|strtoul|strtod|atoi|atol|sscanf)\s*\("
)


def check_stream_no_ingest(root: Path) -> list[Violation]:
    out = []
    for path in iter_source(root, ("src/stream",), (".hpp", ".cpp")):
        for n, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            if STREAM_INGEST.search(strip_comments(line)) and not suppressed(
                line, "stream-no-ingest", path, n
            ):
                out.append(
                    (path, n, "stream-no-ingest",
                     "file/string ingestion in src/stream; parsing belongs"
                     " in src/flow, sketches consume FlowRecord structs")
                )
    return out


# A `static` (optionally inline/thread_local) that is not const-qualified
# and not obviously a function declaration. Heuristic: a variable line has
# a `;` and either carries an initializer (`=`, `{`) or has no parameter
# list at all; `static T f();` and `static T f(args)` stay exempt.
MUTABLE_STATIC = re.compile(
    r"(?:^|[\s;{])(?:inline\s+|thread_local\s+)*static\s+"
    r"(?!const\b|constexpr\b|constinit\b|assert\s*\()"
)


def check_shard_state_statics(root: Path) -> list[Violation]:
    out = []
    for path in iter_source(root, ("src",), (".hpp", ".cpp")):
        text = path.read_text(encoding="utf-8")
        if "DDPM_SHARD_STATE" not in text:
            continue
        if path.name == "shard_annotations.hpp":
            continue  # the vocabulary header defines the macro itself
        for n, line in enumerate(text.splitlines(), 1):
            code = strip_comments(line)
            if not MUTABLE_STATIC.search(code):
                continue
            looks_like_variable = ";" in code and (
                "=" in code or "{" in code or "(" not in code)
            if not looks_like_variable:
                continue
            if "DDPM_SHARD_STATE" in code:
                continue  # annotated: the analyzer audits it interprocedurally
            if suppressed(line, "shard-state-statics", path, n):
                continue
            out.append(
                (path, n, "shard-state-statics",
                 "mutable static in a DDPM_SHARD_STATE file is a cross-shard"
                 " channel; annotate it DDPM_SHARD_STATE or remove it"))
    return out


def check_required_docs(root: Path) -> list[Violation]:
    out = []
    for name in REQUIRED_DOCS:
        path = root / name
        if not path.is_file():
            out.append((path, 1, "required-docs",
                        f"{name} is missing; sessions depend on it"))
        elif not path.read_text(encoding="utf-8", errors="replace").strip():
            out.append((path, 1, "required-docs",
                        f"{name} is empty; sessions depend on its content"))
    return out


def check_stale_suppressions(root: Path) -> list[Violation]:
    """allow() comments that silenced nothing this run.

    Must run AFTER every other check: _USED_SUPPRESSIONS is only complete
    once all rules have scanned their files. An allow() naming an unknown
    rule is reported too — it is a typo that silences nothing forever.
    """
    out = []
    for path in iter_source(root, ("src", "tests", "bench", "examples"),
                            (".hpp", ".h", ".cpp")):
        for n, line in enumerate(path.read_text(encoding="utf-8",
                                                errors="replace")
                                 .splitlines(), 1):
            for m in ALLOW.finditer(line):
                rule = m.group(1)
                if rule not in KNOWN_RULES:
                    out.append(
                        (path, n, "stale-suppression",
                         f"allow({rule}) names an unknown rule"))
                elif (path, n, rule) not in _USED_SUPPRESSIONS:
                    out.append(
                        (path, n, "stale-suppression",
                         f"allow({rule}) no longer matches a violation on "
                         "this line; remove it"))
    return out


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    if not (root / "src").is_dir():
        print(f"ddpm_lint: {root} does not look like the repo root", file=sys.stderr)
        return 2

    violations: list[Violation] = []
    for check in (
        check_pragma_once,
        check_rng_containment,
        check_float_compare,
        check_header_io,
        check_using_namespace_std,
        check_netsim_no_std_function,
        check_src_no_console,
        check_stream_no_ingest,
        check_shard_state_statics,
        check_required_docs,
        check_stale_suppressions,  # must be last: audits the allow() comments
    ):
        violations.extend(check(root))

    for path, line, rule, message in violations:
        rel = path.relative_to(root).as_posix()
        print(f"{rel}:{line}: [{rule}] {message}")

    by_rule: dict[str, int] = {}
    for _, _, rule in _USED_SUPPRESSIONS:
        by_rule[rule] = by_rule.get(rule, 0) + 1
    detail = ", ".join(f"{r}={n}" for r, n in sorted(by_rule.items()))
    summary = (f"{len(_USED_SUPPRESSIONS)} suppression(s) in use"
               + (f" ({detail})" if detail else ""))

    if violations:
        print(f"ddpm_lint: {len(violations)} violation(s), {summary}",
              file=sys.stderr)
        return 1
    print(f"ddpm_lint: clean, {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
