#!/usr/bin/env python3
"""AST-level determinism & hot-path analyzer for the DDPM reproduction.

Registered as the `static_analyze` ctest. The paper's headline claim — a
single marked packet identifies the true source — is only reproducible
because result tables are byte-identical run-to-run and across --jobs
values. This tool enforces the invariants that keep that true but that the
regex linter (tools/ddpm_lint.py) cannot express, because they need types,
scopes, and a call graph:

  ordered-iteration        no range-for / iterator walk over
                           std::unordered_map/set in any function reachable
                           from snapshot/merge/report/JSON-emit paths
                           (iteration order leaks into output).
  no-wall-clock            no system_clock/steady_clock/time()/clock()/
                           getenv outside the allowlist — simulation time
                           is the only clock a result may depend on.
  capture-lifetime         event-schedule lambdas (schedule_in/schedule_at/
                           InlineAction) must not capture by reference:
                           parked actions outlive the scheduling frame.
  virtual-dtor             polymorphic bases (declare a new virtual member)
                           must have a virtual destructor AND explicitly
                           suppress or protect copy/move (C.67 — slicing
                           through a base handle corrupts results quietly).
  narrowing-in-marking     implicit integral narrowing into 16-bit
                           marking-field arithmetic outside
                           src/packet/marking_field.* — truncation is the
                           semantics only inside the codec.
  no-shared-mutable-static non-const statics in src/ (namespace scope,
                           function-local, or static data members): the
                           parallel sweep runner assumes replications share
                           nothing.
  torus-wrap               raw `%` / `/` arithmetic on a line that reads a
                           Coord-typed local or parameter, outside the
                           audited ring helpers (src/topology/coord.*,
                           src/topology/cartesian.*, or a function named
                           ring_delta). Hand-rolled wrap arithmetic that
                           disagrees with ring_shortest_delta by even one
                           breaks the V = D - S telescoping the identifier
                           depends on.
  det-taint                interprocedural: nondeterminism sources
                           (unordered-container iteration, pointer-keyed
                           containers, thread identity/count, address
                           reinterpretation, DDPM_DET_SOURCE calls) must
                           not be reachable from a determinism sink — a
                           result-path-named function or anything marked
                           DDPM_DET_SINK (src/core/shard_annotations.hpp).
                           Generalizes ordered-iteration to sinks the
                           naming convention cannot see.
  shard-isolation          DDPM_SHARD_STATE members may be touched only by
                           their owning class, and on a sink path only
                           inside the closure of a DDPM_SHARD_MERGE
                           function — whose own closure must be
                           det-taint-clean.
  rng-stream-discipline    RNG construction inside the call-graph closure
                           of a ParallelRunner dispatch site must derive
                           from an explicit seed/jump_stream()/long_jump()
                           argument, never a bare literal or default seed
                           shared across workers.
  tick-domain              additive/comparison arithmetic mixing
                           netsim::SimTime (tick) and core::WindowIndex
                           (window ordinal) operands; explicit
                           SimTime(...)/WindowIndex(...) construction is
                           the sanctioned conversion. Active only in files
                           that use the WindowIndex vocabulary.
  stale-suppression        an `allow(rule)` comment on a line that no
                           longer violates that rule must be removed.

Frontends
---------
The primary frontend is libclang (python `clang.cindex`) driven by a
`compile_commands.json`; CI installs it explicitly. When libclang is not
importable the bundled *textual* frontend runs instead: a comment/string-
stripping lexer plus a scope-tracking parser that recovers classes, member/
param/local declarations, function extents, and a name-based call graph.
It is deliberately conservative (unresolvable range expressions are not
flagged) but covers every rule, so local runs without libclang still gate.
`--frontend libclang` makes libclang mandatory; if it is unavailable the
tool exits 77 (ctest SKIP_RETURN_CODE) rather than failing.

Suppressions & ratchet
----------------------
A line opts out of one rule with `// ddpm-analyze: allow(rule)` (reason
after a colon). Pre-existing debt lives in tools/ddpm_analyze_baseline.json
keyed by line-number-insensitive fingerprints (rule + file + context +
normalized line text + occurrence); baselined findings are reported but do
not fail, new ones do. `--update-baseline` rewrites the file; stale
baseline entries and stale allow() comments fail the run so debt only
ratchets down.

Scoped runs & caching
---------------------
`--only RULE[,RULE...]` restricts the report (and the pass/fail gate) to
the named rules: findings for other rules are dropped, and allow()
comments / baseline entries for unselected rules are neither consumed nor
reported stale. Unknown rule names are a usage error. `--facts-cache PATH`
persists the parsed-facts model (functions, classes, rule sites) keyed by
a digest of the analyzed file contents + frontend + tool version, so
repeated scoped runs skip the parse entirely when nothing changed.

Usage:
  tools/ddpm_analyze.py [--compile-commands build/compile_commands.json]
                        [--baseline tools/ddpm_analyze_baseline.json]
                        [--frontend auto|libclang|textual] [--json OUT]
                        [--only RULE[,RULE...]] [--facts-cache PATH]
                        [--update-baseline] [--self-test DIR] [ROOT]

Exit codes: 0 clean, 1 findings/self-test failure, 2 usage error,
77 skipped (requested frontend unavailable).
"""
from __future__ import annotations

import argparse
import hashlib
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

SKIP_EXIT = 77

# Bump whenever extraction or the rule passes change meaning: the facts
# cache (--facts-cache) keys on it, so stale pickles self-invalidate.
TOOL_VERSION = "3"

RULES = (
    "ordered-iteration",
    "no-wall-clock",
    "capture-lifetime",
    "virtual-dtor",
    "narrowing-in-marking",
    "no-shared-mutable-static",
    "torus-wrap",
    "hot-no-alloc",
    "hot-no-virtual",
    "hot-no-lock",
    "hot-no-throw-io",
    "hot-no-div",
    "layout-certified",
    "det-taint",
    "shard-isolation",
    "rng-stream-discipline",
    "tick-domain",
)
META_RULES = ("stale-suppression",)

# Functions whose (simple) name marks the start of a result path: anything
# they reach transitively is output-order-sensitive. `entropy`/`observe`/
# `identify` are result paths in the paper's sense: they produce the values
# Tables 1-3 are built from.
RESULT_PATH_SEED = re.compile(
    r"(?:^|_)(to_json|to_csv|to_dot|snapshot|merge|report|summary|summarize|"
    r"emit|write|digest|entropy|ranked|identify|observe)(?:_|$)|"
    r"^(to_string)$",
    re.IGNORECASE,
)

UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")

WALL_CLOCK_IDENTS = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "localtime", "gmtime", "strftime", "getenv",
}
# Bare `time`/`clock` only count as the C library calls when not accessed
# as a member (`.time()`) or qualified by a project namespace.
WALL_CLOCK_CALLS = {"time", "clock"}

SCHEDULE_CALLEES = {"schedule", "schedule_in", "schedule_at", "InlineAction"}

ALLOW_RE = re.compile(r"ddpm-analyze:\s*allow\(([\w-]+(?:\s*,\s*[\w-]+)*)\)")
EXPECT_RE = re.compile(r"ddpm-analyze:\s*expect\(([\w-]+(?:\s*,\s*[\w-]+)*)\)")

CXX_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "static_cast", "dynamic_cast",
    "reinterpret_cast", "const_cast", "new", "delete", "throw", "noexcept",
    "assert", "defined", "alignas", "typeid", "co_await", "co_return",
}

U16_TYPES = re.compile(r"^(?:std\s*::\s*)?uint16_t$|^unsigned\s+short(?:\s+int)?$")
# Binary operators whose int-promoted result can exceed 16 bits. Bitwise
# &/|/^ of two narrow operands cannot, so they are deliberately absent.
ARITH_OPS = {"+", "-", "*", "<<"}
EXPLICIT_NARROW_RE = re.compile(
    r"static_cast\s*<\s*(?:std\s*::\s*)?uint16_t\s*>|"
    r"(?:std\s*::\s*)?uint16_t\s*\(|narrow"
)

# torus-wrap: a declared type naming Coord, and a binary % or / (an
# operand-shaped token on both sides, ruling out comments already blanked
# and pointer declarations). The lexical operator check is shared verbatim
# between the two frontends so they flag the same lines.
COORD_TYPE_RE = re.compile(r"\bCoord\b")
TORUS_WRAP_OP_RE = re.compile(r"[\w\)\]]\s*[%/]\s*[\w\(]")

# -- hot-path ruleset (src/core/hot_path.hpp) ------------------------------
# A function whose definition head carries DDPM_HOT is a hot-path root;
# the rules apply to it and to its call-graph closure (simple-name edges,
# same resolution as result_path_functions — a deliberate overapproximation:
# a virtual callee pulls every same-named implementation in). The scanning
# pass is textual for BOTH frontends, so the flagged lines — and therefore
# the ratchet fingerprints — are identical by construction; libclang adds
# only real record layouts for the layout-certified cross-check.
HOT_FN_MACRO = "DDPM_HOT"
HOT_STATE_RE = re.compile(r"\b(?:struct|class)\s+DDPM_HOT_STATE\s+([A-Za-z_]\w*)")
HOT_LAYOUT_RE = re.compile(
    r"\bDDPM_HOT_LAYOUT\s*\(\s*([A-Za-z_]\w*)\s*,\s*(\d+)\s*,\s*(\d+)\s*\)")
HOT_ALLOC_RES = (
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\bmake_(?:unique|shared)\s*<"), "make_unique/make_shared"),
    (re.compile(r"\bstd\s*::\s*function\s*<"), "std::function construction"),
)
# Container growth: receiver.method() where the receiver's declared type is
# growth-prone and no `receiver.reserve(...)` appears anywhere in the same
# file (the reserve-dominates heuristic: a reserved container's steady-state
# pushes stay inside the slab).
HOT_GROWTH_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*(push_back|emplace_back|emplace_front|"
    r"push_front|emplace|insert|append|resize|assign)\s*\(")
HOT_GROWTH_TYPES = re.compile(r"\b(?:vector|deque|string|basic_string|RingBuffer)\b")
HOT_RESERVE_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*reserve\s*\(")
HOT_MEMBER_CALL_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")
HOT_LOCK_RES = (
    (re.compile(r"\b(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
                r"lock_guard|unique_lock|scoped_lock|shared_lock|"
                r"condition_variable|MutexLock)\b"), "lock/condvar"),
    (re.compile(r"(?:\.|->)\s*(?:lock|unlock|try_lock)\s*\("),
     "explicit lock call"),
    (re.compile(r"\b(?:fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
                r"compare_exchange_weak|compare_exchange_strong|notify_one|"
                r"notify_all)\s*\("), "atomic RMW / condvar notify"),
    (re.compile(r"\batomic\s*<"), "atomic declaration"),
)
HOT_THROW_IO_RES = (
    (re.compile(r"\bthrow\b"), "throw expression"),
    (re.compile(r"\b(?:cout|cerr|clog|endl)\b"), "iostream console I/O"),
    (re.compile(r"\b(?:printf|fprintf|sprintf|snprintf|vprintf|puts|fputs|"
                r"putchar)\s*\("), "printf-family I/O"),
    (re.compile(r"\b(?:stringstream|ostringstream|istringstream|ofstream|"
                r"ifstream|fstream)\b"), "stream construction"),
)
# Integer division/modulo with a non-constant divisor is a 20-40 cycle
# partially-serializing op; a constant divisor strength-reduces to
# shifts/multiplies at -O2. The right operand is exempt when it is a
# numeric literal, sizeof, or a constant-cased identifier (kArity,
# BUFFER_DEPTH) — optionally behind `Qualifier::` scopes. Everything else
# (locals, members, parenthesized expressions) is flagged.
HOT_DIV_QUALIFIER_RE = re.compile(r"^(?:[A-Za-z_]\w*\s*::\s*)+")
HOT_DIV_CONST_RHS_RE = re.compile(r"\d|sizeof\b|k[A-Z]\w*|[A-Z][A-Z0-9_]+\b")
HOT_DIV_TOKEN_RE = re.compile(r"[A-Za-z_][\w:]*|\S")


def hot_div_matches(lt: str):
    """Yields (operator, rhs-token) for each `/`, `%`, `/=`, `%=` on the
    (comment/string-blanked) line whose right operand is not provably a
    compile-time constant."""
    for m in re.finditer(r"[/%]", lt):
        i = m.start()
        if lt[:i].rstrip().endswith("operator"):
            continue  # operator/ / operator% declaration, not a division
        j = i + 1
        op = m.group(0)
        if j < len(lt) and lt[j] == "=":
            op += "="
            j += 1
        rhs = HOT_DIV_QUALIFIER_RE.sub("", lt[j:].lstrip())
        if not rhs or HOT_DIV_CONST_RHS_RE.match(rhs):
            continue
        tok = HOT_DIV_TOKEN_RE.match(rhs)
        yield op, tok.group(0) if tok else rhs[:1]


# -- determinism-taint / shard-safety ruleset ------------------------------
# (src/core/shard_annotations.hpp). Annotations are lexical tokens exactly
# like DDPM_HOT: the textual parser harvests them from definition heads and
# `;`-terminated declarations, and the whole dataflow pass runs textually
# under BOTH frontends so flagged lines and ratchet fingerprints are
# frontend-independent by construction.
DET_SOURCE_MACRO = "DDPM_DET_SOURCE"
DET_SINK_MACRO = "DDPM_DET_SINK"
SHARD_MERGE_MACRO = "DDPM_SHARD_MERGE"
SHARD_STATE_MACRO = "DDPM_SHARD_STATE"

# Lexical nondeterminism sources: environment reads whose value depends on
# scheduling/thread count/address layout rather than seeded simulation
# state. Unordered iteration and DDPM_DET_SOURCE calls are handled via
# sites/call scanning, not this table.
DET_SOURCE_LEX = (
    (re.compile(r"\bhardware_concurrency\s*\("),
     "std::thread::hardware_concurrency()"),
    (re.compile(r"\bthis_thread\s*::\s*get_id\s*\(|\bthread\s*::\s*id\b"),
     "thread identity"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\breinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t\b"),
     "pointer value reinterpreted as integer"),
)
# Associative container keyed on a pointer type: iteration/sort order is
# the allocator's address layout. Only the first template argument (the
# key) matters; pointer-valued mapped types are fine.
DET_POINTER_KEY_RE = re.compile(
    r"\b(?:unordered_map|unordered_set|map|set|multimap|multiset)\s*"
    r"<[^;{}>,]*\*")

# rng-stream-discipline: worker closures are seeded from ParallelRunner
# dispatch sites; inside them every Rng must be constructed from an
# explicit stream derivation, never a bare literal or the default seed.
RNG_DISPATCH_RE = re.compile(r"\bParallelRunner\b|\bfor_each_index\s*\(")
RNG_DECL_RE = re.compile(
    r"\b(?:netsim\s*::\s*)?Rng\s+([A-Za-z_]\w*)\s*(?:\(([^;]*)\)|\{([^;]*)\})\s*;")
RNG_DEFAULT_DECL_RE = re.compile(r"\b(?:netsim\s*::\s*)?Rng\s+([A-Za-z_]\w*)\s*;")
RNG_OK_ARG_RE = re.compile(
    r"\bseed\b|seed\s*\(|_seed\b|\bjump_stream\b|\blong_jump\b|\bstream\b",
    re.IGNORECASE)

# tick-domain: declared-type vocabulary. A line mixing a tick-typed and a
# window-typed operand across an additive/comparison operator is flagged;
# explicit construction (SimTime(...) / WindowIndex(...)) and the scaling
# ops * and / are the sanctioned conversions.
TICK_DOMAIN_TYPES = (
    (re.compile(r"\bWindowIndex\b"), "window"),
    (re.compile(r"\bSimTime\b"), "tick"),
)
TICK_MIX_OP_RE = re.compile(r"[\w\)\]]\s*(?:\+=?|-=?|<=?|>=?|==|!=)\s*[\w\(]")
TICK_CONVERT_RE = re.compile(r"\b(?:SimTime|WindowIndex)\s*\(")


# --------------------------------------------------------------------------
# Shared fact model (both frontends emit these)
# --------------------------------------------------------------------------

@dataclass
class FunctionInfo:
    qname: str           # e.g. "ddpm::telemetry::Registry::snapshot"
    name: str            # simple name: "snapshot"
    cls: str             # enclosing class simple name, "" for free functions
    file: str
    line: int
    calls: set = field(default_factory=set)  # simple callee names
    hot: bool = False    # definition head carries DDPM_HOT


@dataclass
class ClassInfo:
    name: str
    file: str
    line: int
    has_bases: bool = False             # derived classes are out of scope
    declares_virtual: bool = False      # a new virtual member (not the dtor)
    has_virtual_dtor: bool = False
    dtor_declared: bool = False
    dtor_access: str = "public"
    copy_declared: bool = False         # copy ctor or copy-assign declared
    copy_access: str = "public"         # access of the declared copy op
    copy_deleted: bool = False


@dataclass
class Fact:
    """A site a rule may turn into a finding."""
    rule: str
    file: str
    line: int
    context: str         # enclosing function qname or class name
    detail: str


@dataclass
class Finding:
    rule: str
    file: str            # repo-relative posix path
    line: int
    context: str
    message: str
    fingerprint: str = ""
    baselined: bool = False
    suppressed: bool = False


@dataclass
class Facts:
    functions: dict = field(default_factory=dict)     # qname -> FunctionInfo
    classes: dict = field(default_factory=dict)       # name -> ClassInfo
    sites: list = field(default_factory=list)         # [Fact]
    # class simple name -> (sizeof, alignof) in bytes; populated only by the
    # libclang frontend, consumed by the layout-certified cross-check.
    class_layout: dict = field(default_factory=dict)
    frontend: str = "textual"

    def merge(self, other: "Facts") -> None:
        for q, fn in other.functions.items():
            if q in self.functions:
                self.functions[q].calls |= fn.calls
                self.functions[q].hot = self.functions[q].hot or fn.hot
            else:
                self.functions[q] = fn
        for n, layout in other.class_layout.items():
            self.class_layout.setdefault(n, layout)
        for n, ci in other.classes.items():
            self.classes.setdefault(n, ci)
        seen = {(f.rule, f.file, f.line, f.detail) for f in self.sites}
        for f in other.sites:
            if (f.rule, f.file, f.line, f.detail) not in seen:
                self.sites.append(f)


# --------------------------------------------------------------------------
# Textual frontend: lexer
# --------------------------------------------------------------------------

def blank_comments_and_strings(text: str) -> str:
    """Returns text with comments and string/char literals replaced by
    spaces, preserving length and newlines (so offsets/lines line up)."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == "R" and nxt == '"':
            j = i + 2
            while j < n and text[j] not in "(":
                j += 1
            delim = text[i + 2:j]
            end = text.find(")" + delim + '"', j)
            end = n if end == -1 else end + len(delim) + 2
            for k in range(i, min(end, n)):
                if text[k] != "\n":
                    out[k] = " "
            i = end
        elif c in "\"'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*|::|->\*?|<<=?|>>=?|<=|>=|==|!=|&&|\|\||\+\+|--|[+\-*/%^&|~!<>=]=?"
    r"|\d[\w.']*|\.\.\.|[\[\](){};:,.?#\\]"
)


@dataclass
class Tok:
    s: str
    pos: int
    line: int


def tokenize(clean: str):
    line_starts = [0]
    for m in re.finditer("\n", clean):
        line_starts.append(m.end())
    toks = []
    import bisect
    for m in TOKEN_RE.finditer(clean):
        ln = bisect.bisect_right(line_starts, m.start())
        toks.append(Tok(m.group(0), m.start(), ln))
    return toks


# --------------------------------------------------------------------------
# Textual frontend: scope-tracking parser
# --------------------------------------------------------------------------

@dataclass
class _Scope:
    kind: str            # "namespace" | "class" | "function" | "block" | "enum"
    name: str = ""
    qname: str = ""      # for functions
    access: str = "public"
    hot: bool = False    # function head carried DDPM_HOT
    start_line: int = 0  # function head line (extent recording)


class TextualUnit:
    """Facts extracted from one source file by the textual frontend."""

    def __init__(self, path: Path, rel: str, text: str):
        self.path = path
        self.rel = rel
        self.text = text
        self.clean = blank_comments_and_strings(text)
        self.lines = text.splitlines()
        self.clean_lines = self.clean.splitlines()
        self.toks = tokenize(self.clean)
        self._wrap_lines: set = set()
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.members: dict[str, dict[str, str]] = {}   # class -> name -> type
        self.locals_u16: set = set()
        self.sites: list[Fact] = []
        # (qname, start_line, end_line) per function *definition* — one entry
        # per body even when a qname is defined twice (#if variants), so a
        # hot-line scan never swallows the region between two definitions.
        self.fn_extents: list[tuple] = []
        # Shard/determinism annotation harvest (shard_annotations.hpp):
        # simple function names carrying each macro, and annotated data
        # members as (owner class, member name, line).
        self.det_sources: set = set()
        self.det_sinks: set = set()
        self.shard_merges: set = set()
        self.shard_states: list[tuple] = []
        self._parse()
        # Hot-path state/layout declarations are recognized lexically on the
        # blanked text so both frontends see the identical set (the macros
        # expand to attributes/static_asserts under clang, to nothing under
        # gcc — neither expansion is visible here).
        self.hot_states: list[tuple] = []    # (class name, line)
        self.hot_layouts: list[tuple] = []   # (class name, size, align, line)
        for n, cl in enumerate(self.clean_lines, 1):
            for m in HOT_STATE_RE.finditer(cl):
                self.hot_states.append((m.group(1), n))
            for m in HOT_LAYOUT_RE.finditer(cl):
                self.hot_layouts.append(
                    (m.group(1), int(m.group(2)), int(m.group(3)), n))

    # -- helpers ----------------------------------------------------------

    def _stmt_text(self, toks) -> str:
        return " ".join(t.s for t in toks)

    def _match_forward(self, i: int, open_s: str, close_s: str) -> int:
        """Index of the token closing the bracket opened at toks[i]."""
        depth = 0
        t = self.toks
        while i < len(t):
            if t[i].s == open_s:
                depth += 1
            elif t[i].s == close_s:
                depth -= 1
                if depth == 0:
                    return i
            i += 1
        return len(t) - 1

    # -- main parse -------------------------------------------------------

    def _parse(self) -> None:
        toks = self.toks
        scopes: list[_Scope] = []
        ns_stack: list[str] = []
        stmt_start = 0          # token index where current statement began
        i = 0

        def cur_fn() -> str:
            for sc in reversed(scopes):
                if sc.kind == "function":
                    return sc.qname
            return ""

        def cur_class() -> str:
            for sc in reversed(scopes):
                if sc.kind == "class":
                    return sc.name
                if sc.kind == "function":
                    return ""
            return ""

        def at_class_body() -> bool:
            return bool(scopes) and scopes[-1].kind == "class"

        def at_fn_body() -> bool:
            return any(sc.kind == "function" for sc in scopes)

        while i < len(toks):
            t = toks[i]
            s = t.s

            if s == "#":  # skip preprocessor line
                ln = t.line
                while i < len(toks) and toks[i].line == ln:
                    i += 1
                stmt_start = i
                continue

            if s in ("public", "private", "protected") and i + 1 < len(toks) \
                    and toks[i + 1].s == ":" and at_class_body():
                scopes[-1].access = s
                i += 2
                stmt_start = i
                continue

            if s == "{":
                scopes.append(self._classify_brace(stmt_start, i, scopes, ns_stack))
                if scopes[-1].kind == "namespace":
                    ns_stack.append(scopes[-1].name)
                i += 1
                stmt_start = i
                continue

            if s == "}":
                if scopes:
                    closing = scopes.pop()
                    if closing.kind == "namespace" and ns_stack:
                        ns_stack.pop()
                    if closing.kind == "function" and closing.qname:
                        self.fn_extents.append(
                            (closing.qname, closing.start_line or t.line,
                             t.line))
                i += 1
                stmt_start = i
                continue

            if s == ";":
                self._handle_statement(toks[stmt_start:i], scopes, ns_stack)
                i += 1
                stmt_start = i
                continue

            # range-for detection: for ( ... : ... )
            if s == "for" and i + 1 < len(toks) and toks[i + 1].s == "(":
                close = self._match_forward(i + 1, "(", ")")
                inner = toks[i + 2:close]
                self._handle_for(t.line, inner, cur_fn(), cur_class())
                # fall through: body brace handled normally; skip the header
                # so `;` inside classic for() doesn't end the statement.
                i = close + 1
                stmt_start = i
                continue

            if at_fn_body():
                self._scan_in_function(i, cur_fn(), cur_class())

            # wall-clock idents can appear anywhere (incl. member init lists)
            if s in WALL_CLOCK_IDENTS and not self._qualified_by_project(i):
                self.sites.append(Fact("no-wall-clock", self.rel, t.line,
                                       cur_fn() or cur_class(), s))
            if s in WALL_CLOCK_CALLS and i + 1 < len(toks) \
                    and toks[i + 1].s == "(" \
                    and (i == 0 or toks[i - 1].s not in (".", "->", "::", "~")) \
                    and not self._is_decl_name(i):
                self.sites.append(Fact("no-wall-clock", self.rel, t.line,
                                       cur_fn() or cur_class(), s + "()"))

            i += 1

    def _qualified_by_project(self, i: int) -> bool:
        """True when `chrono`-style ident is qualified by a non-std scope
        (e.g. our own `sim::steady_clock` shim in fixtures is still flagged;
        only `foo.system_clock` member access is excused)."""
        return i > 0 and self.toks[i - 1].s in (".", "->")

    def _is_decl_name(self, i: int) -> bool:
        """`SimTime time(...)` — a declaration/definition named `time`."""
        if i == 0:
            return False
        prev = self.toks[i - 1].s
        return bool(re.match(r"[A-Za-z_]", prev)) or prev in ("&", "*", ">")

    # -- brace classification --------------------------------------------

    def _classify_brace(self, stmt_start: int, brace_i: int,
                        scopes: list, ns_stack: list) -> _Scope:
        toks = self.toks
        head = toks[stmt_start:brace_i]
        words = [t.s for t in head]

        if "namespace" in words:
            k = words.index("namespace")
            name = "::".join(w for w in words[k + 1:] if re.match(r"[A-Za-z_]", w))
            return _Scope("namespace", name or "<anon>")

        if "enum" in words:
            return _Scope("enum")

        for kw in ("class", "struct"):
            if kw in words:
                k = words.index(kw)
                rest = words[k + 1:]
                name = ""
                for w in rest:
                    if re.match(r"[A-Za-z_]\w*$", w) and \
                            w not in ("final", "alignas", "DDPM_HOT_STATE"):
                        name = w
                        break
                # `struct X { ... } var;` and template specializations all
                # land here; a trailing `(` would mean function-try etc.
                if name:
                    ci = self.classes.setdefault(
                        name, ClassInfo(name, self.rel,
                                        head[0].line if head else toks[brace_i].line))
                    ci.has_bases = ci.has_bases or ":" in rest
                    self.members.setdefault(name, {})
                    default_access = "private" if kw == "class" else "public"
                    return _Scope("class", name, access=default_access)
                return _Scope("block")

        # function definition?  ... name ( params ) [quals] {
        if any(sc.kind == "function" for sc in scopes):
            return _Scope("block")  # nested brace inside a function
        close_paren = None
        for j in range(len(head) - 1, -1, -1):
            if head[j].s == ")":
                close_paren = j
                break
            if head[j].s in ("const", "noexcept", "override", "final", "try",
                             "&", "&&", "->") or re.match(r"[\w:<>,\s]", head[j].s):
                continue
            break
        if close_paren is not None:
            depth = 0
            open_paren = None
            for j in range(close_paren, -1, -1):
                if head[j].s == ")":
                    depth += 1
                elif head[j].s == "(":
                    depth -= 1
                    if depth == 0:
                        open_paren = j
                        break
            if open_paren is not None and open_paren > 0:
                before = head[open_paren - 1].s
                if before not in CXX_KEYWORDS and re.match(r"[A-Za-z_~]", before):
                    qname, simple, cls = self._function_name(head, open_paren,
                                                            scopes, ns_stack)
                    if qname:
                        # Inline-bodied members never reach _handle_statement
                        # (no terminating `;`), so record the special-member
                        # flags from the head here.
                        if scopes and scopes[-1].kind == "class":
                            self._class_member_flags(
                                words, scopes[-1].name, scopes[-1].access)
                        fn = FunctionInfo(qname, simple, cls, self.rel,
                                          head[open_paren - 1].line)
                        fn_rec = self.functions.setdefault(qname, fn)
                        if HOT_FN_MACRO in words:
                            fn_rec.hot = True
                        self._harvest_annotations(words, simple=simple, cls=cls)
                        self._parse_params(head[open_paren + 1:close_paren], qname)
                        sc = _Scope("function", simple)
                        sc.qname = qname
                        sc.hot = HOT_FN_MACRO in words
                        sc.start_line = head[0].line if head else 0
                        return sc
        return _Scope("block")

    def _function_name(self, head, open_paren, scopes, ns_stack):
        parts = []
        j = open_paren - 1
        while j >= 0:
            w = head[j].s
            if re.match(r"[A-Za-z_~]\w*$", w):
                parts.append(w)
                if j >= 2 and head[j - 1].s == "::":
                    j -= 2
                    # skip template args on the qualifier: Foo<T>::bar
                    if j >= 0 and head[j].s == ">":
                        depth = 0
                        while j >= 0:
                            if head[j].s == ">":
                                depth += 1
                            elif head[j].s == "<":
                                depth -= 1
                                if depth == 0:
                                    j -= 1
                                    break
                            j -= 1
                    continue
                break
            break
        if not parts:
            return "", "", ""
        parts.reverse()
        simple = parts[-1]
        cls = parts[-2] if len(parts) > 1 else ""
        encl_cls = ""
        for sc in reversed(scopes):
            if sc.kind == "class":
                encl_cls = sc.name
                break
        if not cls and encl_cls:
            cls = encl_cls
            parts = [encl_cls] + parts
        q = "::".join([n for n in ns_stack if n != "<anon>"] + parts)
        return q, simple, cls

    def _parse_params(self, ptoks, fn_qname: str) -> None:
        if not ptoks:
            return
        depth = 0
        groups, cur = [], []
        for t in ptoks:
            if t.s in ("<", "(", "["):
                depth += 1
            elif t.s in (">", ")", "]"):
                depth -= 1
            if t.s == "," and depth == 0:
                groups.append(cur)
                cur = []
            else:
                cur.append(t)
        groups.append(cur)
        for g in groups:
            names = [t.s for t in g if re.match(r"[A-Za-z_]\w*$", t.s)]
            if len(names) < 2:
                continue
            name = names[-1]
            type_str = " ".join(t.s for t in g[:-1])
            self._record_local(fn_qname, name, type_str)

    def _record_local(self, fn_qname: str, name: str, type_str: str) -> None:
        key = (fn_qname, name)
        if UNORDERED_RE.search(type_str):
            self._local_types.setdefault(key, type_str)
        elif U16_TYPES.match(type_str.replace(" ", "")) or "uint16_t" in type_str:
            self.locals_u16.add(key)
            self._local_types.setdefault(key, type_str)
        else:
            self._local_types.setdefault(key, type_str)

    _local_types: dict

    def _harvest_annotations(self, words, simple=None, cls="") -> None:
        """Records DDPM_DET_SOURCE/DDPM_DET_SINK/DDPM_SHARD_MERGE from a
        function head (inline definition, name already resolved) or from a
        `;`-terminated declaration (name = identifier before the first
        '('). Annotating the declaration in the header is enough: the
        taint pass matches functions by (class, simple name) — an empty
        class binds every same-named function, matching the call-graph
        overapproximation."""
        for macro, store in ((DET_SOURCE_MACRO, self.det_sources),
                             (DET_SINK_MACRO, self.det_sinks),
                             (SHARD_MERGE_MACRO, self.shard_merges)):
            if macro not in words:
                continue
            name = simple
            if name is None and "(" in words:
                k = words.index("(")
                if k > 0 and re.match(r"[A-Za-z_]\w*$", words[k - 1]):
                    name = words[k - 1]
            if name:
                store.add((cls, name))

    def _class_member_flags(self, words, cls: str, access: str) -> None:
        """Updates special-member facts for `cls` from a member head/decl.

        Called for both `;`-terminated declarations (_handle_statement) and
        inline-bodied definitions (_classify_brace), so virtual methods with
        bodies are seen exactly as libclang sees them.
        """
        ci = self.classes[cls]
        if "virtual" in words:
            if "~" in words:
                ci.has_virtual_dtor = True
                ci.dtor_declared = True
                ci.dtor_access = access
            else:
                ci.declares_virtual = True
        elif "~" in words:
            ci.dtor_declared = True
            ci.dtor_access = access
        if "operator" in words:
            k = words.index("operator")
            if k + 1 < len(words) and words[k + 1] == "=" and cls in words[:k]:
                ci.copy_declared = True
                ci.copy_access = access
                ci.copy_deleted = ci.copy_deleted or "delete" in words
        # copy ctor:  Cls ( const Cls & ... )
        if words[:1] == [cls] and len(words) > 3 and words[1] == "(":
            inner = words[2:]
            if cls in inner and "&" in inner and "&&" not in inner:
                ci.copy_declared = True
                ci.copy_access = access
                ci.copy_deleted = ci.copy_deleted or "delete" in words

    # -- statements -------------------------------------------------------

    def _handle_statement(self, stoks, scopes, ns_stack) -> None:
        if not stoks:
            return
        words = [t.s for t in stoks]
        line = stoks[0].line
        in_class = bool(scopes) and scopes[-1].kind == "class"
        in_fn = any(sc.kind == "function" for sc in scopes)
        at_ns = not in_class and not in_fn and not any(
            sc.kind in ("enum",) for sc in scopes)

        # -- class member declarations & special members ------------------
        if in_class:
            cls = scopes[-1].name
            access = scopes[-1].access
            self._class_member_flags(words, cls, access)
            self._harvest_annotations(words, cls=cls)
            # member variable? no parens -> record type
            if "(" not in words and "operator" not in words and \
                    words[0] not in ("using", "friend", "typedef", "template",
                                     "enum", "class", "struct"):
                names = [w for w in words if re.match(r"[A-Za-z_]\w*$", w)]
                if len(names) >= 2:
                    eq = words.index("=") if "=" in words else len(words)
                    decl_words = words[:eq]
                    decl_names = [w for w in decl_words
                                  if re.match(r"[A-Za-z_]\w*$", w)
                                  and w not in ("const", "static", "mutable",
                                                "constexpr", "inline", "std")]
                    if decl_names:
                        var = decl_names[-1]
                        self.members.setdefault(cls, {})[var] = " ".join(decl_words)
                        if SHARD_STATE_MACRO in decl_words:
                            self.shard_states.append((cls, var, line))
            # static data member (shared mutable state)
            self._check_static(stoks, words, line, context=cls)
            return

        # -- namespace-scope statements -----------------------------------
        if at_ns:
            self._harvest_annotations(words)
            self._check_static(stoks, words, line, context="::".join(ns_stack))
            return

        # -- inside a function --------------------------------------------
        if in_fn:
            fn = next(sc.qname for sc in reversed(scopes) if sc.kind == "function")
            self._check_static(stoks, words, line, context=fn)
            self._maybe_local_decl(stoks, words, fn, line)

    def _check_static(self, stoks, words, line, context) -> None:
        if "static" not in words:
            return
        k = words.index("static")
        rest = words[k + 1:]
        if not rest:
            return
        if "(" in rest:            # function declaration/definition
            return
        if "const" in rest[:4] or "constexpr" in rest[:4] or \
                words[max(0, k - 2):k].count("constexpr"):
            return
        if "using" in words[:k] or "typedef" in words[:k]:
            return
        self.sites.append(Fact("no-shared-mutable-static", self.rel, line,
                               context, " ".join(words[:6])))

    def _maybe_local_decl(self, stoks, words, fn, line) -> None:
        # TYPE NAME [= ...] ;   (no leading keyword, contains no '(' before NAME)
        if not words or words[0] in CXX_KEYWORDS or words[0] in (
                "return", "delete", "goto", "break", "continue", "case"):
            return
        eq = words.index("=") if "=" in words else None
        decl = words[:eq] if eq is not None else words
        if "(" in decl:
            return
        names = [w for w in decl if re.match(r"[A-Za-z_]\w*$", w)
                 and w not in ("const", "auto", "std", "static", "constexpr")]
        if len(names) < 2:
            return
        var = names[-1]
        type_str = " ".join(decl)
        self._record_local(fn, var, type_str)
        # narrowing-in-marking: uint16 decl initialised from arithmetic.
        # (Plain re-assignments are left to -Wconversion: cindex cannot
        # recover the operator of a BINARY_OPERATOR '=' portably, and the
        # two frontends must agree on what they flag.)
        if eq is not None and ("uint16_t" in decl):
            self._check_narrowing(words[eq + 1:], fn, line)

    @staticmethod
    def _rhs_has_arith(words) -> bool:
        """True when the expression holds a *binary* widening operator —
        an operand-shaped token on both sides (rules out unary &/*/-)."""
        operand_end = re.compile(r"[\w)\]]$")
        operand_start = re.compile(r"^[\w(]")
        for k, w in enumerate(words):
            if w in ARITH_OPS and 0 < k < len(words) - 1 \
                    and operand_end.search(words[k - 1]) \
                    and operand_start.search(words[k + 1]):
                return True
        return False

    def _check_narrowing(self, rhs_words, fn: str, line: int) -> None:
        rhs = " ".join(rhs_words)
        if self._rhs_has_arith(rhs_words) and not EXPLICIT_NARROW_RE.search(rhs):
            self.sites.append(Fact("narrowing-in-marking", self.rel, line,
                                   fn, rhs[:60]))

    # -- per-token scanning inside function bodies ------------------------

    def _scan_in_function(self, i: int, fn_qname: str, cls: str) -> None:
        toks = self.toks
        t = toks[i]
        # call edges: ident (   — not a keyword, not a declaration
        if re.match(r"[A-Za-z_]\w*$", t.s) and t.s not in CXX_KEYWORDS \
                and i + 1 < len(toks) and toks[i + 1].s == "(":
            if fn_qname in self.functions:
                self.functions[fn_qname].calls.add(t.s)
            if t.s in SCHEDULE_CALLEES:
                self._check_schedule_call(i, fn_qname)
        # torus-wrap: this token reads a Coord-typed local/param and the
        # (comment-blanked) line carries a binary % or /. One finding per
        # line; exemptions for the ring helpers live in evaluate().
        if t.line not in self._wrap_lines and re.match(r"[A-Za-z_]\w*$", t.s):
            ty = self._local_types.get((fn_qname, t.s))
            if ty and COORD_TYPE_RE.search(ty):
                lt = self.clean_lines[t.line - 1] \
                    if 0 < t.line <= len(self.clean_lines) else ""
                if TORUS_WRAP_OP_RE.search(lt):
                    self._wrap_lines.add(t.line)
                    self.sites.append(Fact(
                        "torus-wrap", self.rel, t.line, fn_qname,
                        re.sub(r"\s+", " ", lt.strip())[:60]))

    def _check_schedule_call(self, i: int, fn_qname: str) -> None:
        toks = self.toks
        close = self._match_forward(i + 1, "(", ")")
        j = i + 1
        while j < close:
            if toks[j].s == "[" and toks[j - 1].s in ("(", ",", "=", "return"):
                k = self._match_forward(j, "[", "]")
                cap = [toks[m].s for m in range(j + 1, k)]
                if "&" in cap or "&&" in cap:
                    self.sites.append(Fact(
                        "capture-lifetime", self.rel, toks[j].line, fn_qname,
                        "[" + " ".join(cap) + "]"))
                j = k
            j += 1

    # -- range-for --------------------------------------------------------

    def _handle_for(self, line: int, inner, fn_qname: str, cls: str) -> None:
        colon = None
        depth = 0
        for k, t in enumerate(inner):
            if t.s in ("<", "(", "[", "{"):
                depth += 1
            elif t.s in (">", ")", "]", "}"):
                depth -= 1
            elif t.s == ";":
                # classic for: detect iterator walk `x.begin()`
                self._handle_iter_walk(line, inner, fn_qname, cls)
                return
            elif t.s == ":" and depth == 0:
                if k > 0 and inner[k - 1].s == ":":
                    continue
                if k + 1 < len(inner) and inner[k + 1].s == ":":
                    continue
                colon = k
                break
        if colon is None:
            return
        range_toks = inner[colon + 1:]
        rtype = self._resolve_expr_type(range_toks, fn_qname, cls)
        if rtype and UNORDERED_RE.search(rtype):
            self.sites.append(Fact(
                "ordered-iteration", self.rel, line, fn_qname or cls,
                "range-for over " + " ".join(t.s for t in range_toks)[:50]))

    def _handle_iter_walk(self, line, inner, fn_qname, cls) -> None:
        words = [t.s for t in inner]
        for k in range(len(words) - 3):
            if words[k + 1] == "." and words[k + 2] == "begin" and words[k + 3] == "(":
                rtype = self._resolve_name_type(words[k], fn_qname, cls)
                if rtype and UNORDERED_RE.search(rtype):
                    self.sites.append(Fact(
                        "ordered-iteration", self.rel, line, fn_qname or cls,
                        "iterator walk over " + words[k]))

    def _resolve_expr_type(self, rtoks, fn_qname, cls):
        words = [t.s for t in rtoks if t.s not in ("*", "&")]
        if not words:
            return None
        if words[-1] == ")":  # function call result: not resolved
            return None
        # strip leading this-> / obj. qualifiers, keep last identifier
        name = words[-1]
        if not re.match(r"[A-Za-z_]\w*$", name):
            return None
        explicit_member = len(words) >= 2 and words[-2] in (".", "->")
        return self._resolve_name_type(name, fn_qname, cls,
                                       member_only=explicit_member and
                                       (len(words) < 3 or words[-3] == "this"))

    def _resolve_name_type(self, name, fn_qname, cls, member_only=False):
        if not member_only and (fn_qname, name) in self._local_types:
            return self._local_types[(fn_qname, name)]
        if cls and name in self.members.get(cls, {}):
            return self.members[cls][name]
        return None


def build_textual_units(files: list, root: Path) -> list:
    """Parses every file into a TextualUnit with the global class->member
    table already resolved. Shared by the textual frontend (its whole fact
    source) and by the hot-path pass, which runs textually under BOTH
    frontends so the flagged lines are frontend-independent."""
    units = []
    for path in files:
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        rel = path.relative_to(root).as_posix()
        TextualUnit._local_types = {}
        unit = TextualUnit.__new__(TextualUnit)
        unit._local_types = {}
        unit.__init__(path, rel, text)
        units.append(unit)
    # classes/members are declared in headers but used in .cpp files:
    # build a global class->members table, then re-resolve.
    members: dict[str, dict[str, str]] = {}
    for u in units:
        for c, mm in u.members.items():
            members.setdefault(c, {}).update(mm)
    for u in units:
        u.members = {c: dict(members.get(c, {})) for c in members}
        # re-run range-for resolution with global member knowledge
        u.sites = [f for f in u.sites if f.rule != "ordered-iteration"]
        u2 = _ReResolve(u)
        u.sites.extend(u2.sites)
    return units


class TextualFrontend:
    name = "textual"

    def __init__(self):
        self.units: list = []

    def extract(self, files: list, root: Path) -> Facts:
        facts = Facts(frontend=self.name)
        self.units = build_textual_units(files, root)
        for u in self.units:
            facts.merge(self._unit_facts(u))
        return facts

    @staticmethod
    def _unit_facts(u: TextualUnit) -> Facts:
        f = Facts(frontend="textual")
        f.functions = dict(u.functions)
        f.classes = dict(u.classes)
        f.sites = list(u.sites)
        return f


class _ReResolve:
    """Second pass: redo range-for/iter-walk resolution once the global
    class->member table is known (headers parsed after the .cpp)."""

    def __init__(self, unit: TextualUnit):
        self.sites: list[Fact] = []
        self.u = unit
        toks = unit.toks
        scopes: list[_Scope] = []
        ns_stack: list[str] = []
        stmt_start = 0
        i = 0
        while i < len(toks):
            s = toks[i].s
            if s == "#":
                ln = toks[i].line
                while i < len(toks) and toks[i].line == ln:
                    i += 1
                stmt_start = i
                continue
            if s == "{":
                scopes.append(unit._classify_brace(stmt_start, i, scopes, ns_stack))
                if scopes[-1].kind == "namespace":
                    ns_stack.append(scopes[-1].name)
                i += 1
                stmt_start = i
                continue
            if s == "}":
                if scopes:
                    c = scopes.pop()
                    if c.kind == "namespace" and ns_stack:
                        ns_stack.pop()
                i += 1
                stmt_start = i
                continue
            if s == ";":
                i += 1
                stmt_start = i
                continue
            if s == "for" and i + 1 < len(toks) and toks[i + 1].s == "(":
                close = unit._match_forward(i + 1, "(", ")")
                fn = next((sc.qname for sc in reversed(scopes)
                           if sc.kind == "function"), "")
                cls = next((sc.name for sc in reversed(scopes)
                            if sc.kind == "class"), "")
                if not cls and fn:
                    cls = self.u.functions.get(fn).cls if fn in self.u.functions else ""
                saved = unit.sites
                unit.sites = []
                unit._handle_for(toks[i].line, toks[i + 2:close], fn, cls)
                self.sites.extend(unit.sites)
                unit.sites = saved
                i = close + 1
                stmt_start = i
                continue
            i += 1


# --------------------------------------------------------------------------
# libclang frontend
# --------------------------------------------------------------------------

class LibclangFrontend:
    name = "libclang"

    def __init__(self, compile_commands: Path):
        import clang.cindex as ci  # noqa: raises ImportError if absent
        self.ci = ci
        self.index = ci.Index.create()  # raises LibclangError if no .so
        self.ccjson = json.loads(compile_commands.read_text())
        self.ccdir = compile_commands.parent
        self._wrap_seen: set = set()       # (rel, line) torus-wrap dedupe
        self._blank_cache: dict = {}       # abs path -> blanked lines

    def extract(self, files: list, root: Path) -> Facts:
        ci = self.ci
        facts = Facts(frontend=self.name)
        wanted = {p.resolve() for p in files}
        seen_tu = set()
        for entry in self.ccjson:
            src = Path(entry.get("file", ""))
            if not src.is_absolute():
                src = Path(entry.get("directory", ".")) / src
            src = src.resolve()
            if src in seen_tu:
                continue
            if not any(str(src).startswith(str(root / d)) for d in ("src", "tests")) \
                    and src not in wanted:
                continue
            seen_tu.add(src)
            args = self._args(entry)
            try:
                tu = self.index.parse(str(src), args=args)
            except ci.TranslationUnitLoadError:
                continue
            facts.merge(self._walk_tu(tu, root, wanted))
        # fixture files not in compile_commands: parse standalone
        for p in wanted - seen_tu:
            if p.suffix not in (".cpp", ".cc", ".cxx"):
                continue
            if any(str(p) == str(s) for s in seen_tu):
                continue
            try:
                tu = self.index.parse(str(p), args=["-std=c++20",
                                                    "-I" + str(root / "src")])
            except ci.TranslationUnitLoadError:
                continue
            facts.merge(self._walk_tu(tu, root, wanted))
        return facts

    def _args(self, entry):
        if "arguments" in entry:
            raw = entry["arguments"][1:]
        else:
            import shlex
            raw = shlex.split(entry.get("command", ""))[1:]
        args, skip = [], False
        for a in raw:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if a.endswith((".cpp", ".cc", ".o")):
                continue
            args.append(a)
        return args

    def _rel(self, loc, root: Path):
        if not loc.file:
            return None
        p = Path(str(loc.file)).resolve()
        try:
            return p.relative_to(root).as_posix()
        except ValueError:
            return None

    def _walk_tu(self, tu, root: Path, wanted) -> Facts:
        ci = self.ci
        K = ci.CursorKind
        facts = Facts(frontend=self.name)

        def qname(cur):
            parts = []
            c = cur
            while c is not None and c.kind != K.TRANSLATION_UNIT:
                if c.spelling:
                    parts.append(c.spelling)
                c = c.semantic_parent
            return "::".join(reversed(parts))

        def enclosing_class(cur):
            c = cur.semantic_parent
            while c is not None and c.kind != K.TRANSLATION_UNIT:
                if c.kind in (K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
                    return c.spelling
                c = c.semantic_parent
            return ""

        def visit(cur, fn_info):
            rel = self._rel(cur.location, root)
            in_repo = rel is not None and (rel.startswith("src/")
                                           or Path(root, rel).resolve() in wanted)
            kind = cur.kind

            if kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                        K.DESTRUCTOR, K.FUNCTION_TEMPLATE) and cur.is_definition():
                q = qname(cur)
                fi = facts.functions.setdefault(
                    q, FunctionInfo(q, cur.spelling, enclosing_class(cur),
                                    rel or "", cur.location.line))
                fn_info = fi

            if in_repo and kind in (K.CLASS_DECL, K.STRUCT_DECL) \
                    and cur.is_definition():
                self._class_facts(cur, rel, facts)

            if fn_info is not None:
                if kind == K.CALL_EXPR and cur.spelling:
                    fn_info.calls.add(cur.spelling)
                    if in_repo and cur.spelling in SCHEDULE_CALLEES:
                        self._capture_facts(cur, rel, fn_info, facts)
                if in_repo and kind == K.CXX_FOR_RANGE_STMT:
                    self._range_for_facts(cur, rel, fn_info, facts)
                if in_repo and kind in (K.FOR_STMT, K.WHILE_STMT):
                    self._iter_walk_facts(cur, rel, fn_info, facts)
                if in_repo and kind in (K.DECL_REF_EXPR, K.TYPE_REF) \
                        and any(w in (cur.spelling or "")
                                for w in WALL_CLOCK_IDENTS):
                    hit = next(w for w in WALL_CLOCK_IDENTS
                               if w in (cur.spelling or ""))
                    facts.sites.append(Fact("no-wall-clock", rel,
                                            cur.location.line,
                                            fn_info.qname, hit))
                if in_repo and kind == K.CALL_EXPR \
                        and cur.spelling in (WALL_CLOCK_CALLS | WALL_CLOCK_IDENTS):
                    ref = cur.referenced
                    sysname = ref is None or self._rel(ref.location, root) is None
                    if sysname:
                        facts.sites.append(Fact("no-wall-clock", rel,
                                                cur.location.line,
                                                fn_info.qname,
                                                cur.spelling + "()"))
                if in_repo and kind == K.DECL_REF_EXPR:
                    ref = cur.referenced
                    if ref is not None and ref.kind in (K.VAR_DECL,
                                                        K.PARM_DECL):
                        tname = (ref.type.spelling or "") + "|" + \
                            (ref.type.get_canonical().spelling or "")
                        if COORD_TYPE_RE.search(tname):
                            self._torus_wrap_facts(cur, rel, root,
                                                   fn_info, facts)
                if in_repo and kind == K.VAR_DECL:
                    self._narrowing_facts(cur, rel, fn_info, facts)
                if in_repo and kind == K.VAR_DECL \
                        and cur.storage_class == ci.StorageClass.STATIC:
                    t = cur.type
                    if not t.is_const_qualified() \
                            and "constexpr" not in [tk.spelling for tk in
                                                    cur.get_tokens()][:3]:
                        facts.sites.append(Fact(
                            "no-shared-mutable-static", rel, cur.location.line,
                            fn_info.qname, cur.spelling))
            elif in_repo and kind == K.VAR_DECL and cur.semantic_parent is not None \
                    and cur.semantic_parent.kind in (K.NAMESPACE,
                                                     K.TRANSLATION_UNIT,
                                                     K.CLASS_DECL, K.STRUCT_DECL):
                t = cur.type
                is_static_member = cur.semantic_parent.kind in (K.CLASS_DECL,
                                                                K.STRUCT_DECL)
                toks = [tk.spelling for tk in cur.get_tokens()][:4]
                if not t.is_const_qualified() and "constexpr" not in toks \
                        and (is_static_member is False or "static" in toks):
                    facts.sites.append(Fact(
                        "no-shared-mutable-static", rel, cur.location.line,
                        qname(cur.semantic_parent), cur.spelling))

            for ch in cur.get_children():
                visit(ch, fn_info)

        visit(tu.cursor, None)
        return facts

    def _class_facts(self, cur, rel, facts) -> None:
        K = self.ci.CursorKind
        name = cur.spelling
        ci_rec = facts.classes.setdefault(
            name, ClassInfo(name, rel, cur.location.line))
        for ch in cur.get_children():
            if ch.kind == K.CXX_BASE_SPECIFIER:
                ci_rec.has_bases = True
            if ch.kind == K.CXX_METHOD and ch.is_virtual_method():
                ci_rec.declares_virtual = True
            if ch.kind == K.DESTRUCTOR:
                ci_rec.dtor_declared = True
                ci_rec.has_virtual_dtor = ch.is_virtual_method()
                ci_rec.dtor_access = str(ch.access_specifier).split(".")[-1].lower()
            if ch.kind == K.CONSTRUCTOR and ch.is_copy_constructor():
                ci_rec.copy_declared = True
                ci_rec.copy_access = str(ch.access_specifier).split(".")[-1].lower()
                ci_rec.copy_deleted = ci_rec.copy_deleted or ch.is_deleted_method() \
                    if hasattr(ch, "is_deleted_method") else ci_rec.copy_deleted
            if ch.kind == K.CXX_METHOD and ch.spelling == "operator=":
                ci_rec.copy_declared = True
                ci_rec.copy_access = str(ch.access_specifier).split(".")[-1].lower()
        # Real record layout for the layout-certified cross-check. Dependent
        # (template) records report non-positive sizes; skip those.
        try:
            size = cur.type.get_size()
            align = cur.type.get_align()
            if size > 0 and align > 0:
                facts.class_layout.setdefault(name, (size, align))
        except Exception:
            pass

    def _capture_facts(self, call, rel, fn_info, facts) -> None:
        K = self.ci.CursorKind

        def find_lambdas(c):
            if c.kind == K.LAMBDA_EXPR:
                yield c
            for ch in c.get_children():
                yield from find_lambdas(ch)

        for lam in find_lambdas(call):
            toks = []
            for tk in lam.get_tokens():
                toks.append(tk.spelling)
                if tk.spelling == "]":
                    break
            cap = toks[1:-1] if toks else []
            if "&" in cap or "&&" in cap:
                facts.sites.append(Fact("capture-lifetime", rel,
                                        lam.location.line, fn_info.qname,
                                        "[" + " ".join(cap) + "]"))

    def _range_for_facts(self, cur, rel, fn_info, facts) -> None:
        for ch in cur.get_children():
            t = ch.type.get_canonical().spelling if ch.type else ""
            if UNORDERED_RE.search(t or ""):
                facts.sites.append(Fact(
                    "ordered-iteration", rel, cur.location.line,
                    fn_info.qname, "range-for over " + (t or "?")[:50]))
                return

    def _iter_walk_facts(self, cur, rel, fn_info, facts) -> None:
        """Classic `for (auto it = m.begin(); ...)` over an unordered
        container: inspect the loop header (every child but the body)."""
        K = self.ci.CursorKind
        children = list(cur.get_children())
        if len(children) < 2:
            return

        def scan(c):
            if c.kind == K.CALL_EXPR and c.spelling in ("begin", "cbegin"):
                for sub in c.get_children():
                    t = sub.type.get_canonical().spelling if sub.type else ""
                    if UNORDERED_RE.search(t or ""):
                        facts.sites.append(Fact(
                            "ordered-iteration", rel, c.location.line,
                            fn_info.qname, "iterator walk over " + t[:50]))
                        return
            for sub in c.get_children():
                scan(sub)

        for header_child in children[:-1]:
            scan(header_child)

    def _blank_lines(self, path: Path) -> list:
        key = str(path)
        if key not in self._blank_cache:
            try:
                text = path.read_text(encoding="utf-8", errors="replace")
            except OSError:
                text = ""
            self._blank_cache[key] = \
                blank_comments_and_strings(text).splitlines()
        return self._blank_cache[key]

    def _torus_wrap_facts(self, cur, rel, root, fn_info, facts) -> None:
        """A Coord-typed local/param is read on a line with a binary % or /.
        The operator check is the shared TORUS_WRAP_OP_RE lexical test on
        the comment-blanked line, so both frontends flag identical lines
        (and produce identical baseline fingerprints)."""
        line = cur.location.line
        if (rel, line) in self._wrap_seen:
            return
        lines = self._blank_lines(root / rel)
        lt = lines[line - 1] if 0 < line <= len(lines) else ""
        if TORUS_WRAP_OP_RE.search(lt):
            self._wrap_seen.add((rel, line))
            facts.sites.append(Fact(
                "torus-wrap", rel, line, fn_info.qname,
                re.sub(r"\s+", " ", lt.strip())[:60]))

    def _narrowing_facts(self, cur, rel, fn_info, facts) -> None:
        """u16 VAR_DECL initialised from widening arithmetic with no
        explicit cast. Explicit-cast subtrees are pruned; the operator is
        recovered from tokens (cindex has no portable opcode accessor)."""
        K = self.ci.CursorKind
        t = cur.type.get_canonical().spelling if cur.type else ""
        if t not in ("unsigned short", "uint16_t", "std::uint16_t"):
            return
        wide = ("int", "unsigned int", "long", "unsigned long",
                "unsigned long long", "long long")
        hit = []

        def scan(c):
            if c.kind in (K.CXX_STATIC_CAST_EXPR, K.CXX_FUNCTIONAL_CAST_EXPR,
                          K.CSTYLE_CAST_EXPR):
                return  # explicit truncation: the author opted in
            if c.kind == K.BINARY_OPERATOR and not hit:
                toks = {tk.spelling for tk in c.get_tokens()}
                operands_wide = any(
                    (sub.type.get_canonical().spelling if sub.type else "")
                    in wide for sub in c.get_children())
                if operands_wide and toks & ARITH_OPS:
                    hit.append(c)
                    return
            for sub in c.get_children():
                scan(sub)

        for ch in cur.get_children():
            scan(ch)
        if hit:
            facts.sites.append(Fact(
                "narrowing-in-marking", rel, cur.location.line,
                fn_info.qname, cur.spelling))


# --------------------------------------------------------------------------
# Rule engine
# --------------------------------------------------------------------------

MESSAGES = {
    "ordered-iteration": "iteration over an unordered container on a result "
                         "path — order leaks into output; sort first or use "
                         "std::map/set",
    "no-wall-clock": "wall-clock/environment read — results may only depend "
                     "on simulation time",
    "capture-lifetime": "scheduled action captures by reference — the parked "
                        "action outlives this stack frame; capture by value "
                        "(this + copies)",
    "virtual-dtor": "polymorphic base without compliant special members",
    "narrowing-in-marking": "implicit narrowing into 16-bit marking-field "
                            "arithmetic — make the truncation explicit with "
                            "static_cast<std::uint16_t> (semantics live in "
                            "packet/marking_field.*)",
    "no-shared-mutable-static": "non-const static — replications must share "
                                "nothing (parallel sweep runner)",
    "torus-wrap": "raw % or / on a Coord-typed value — wrap arithmetic "
                  "belongs in the audited ring helpers "
                  "(ring_shortest_delta / Torus::ring_delta); a hand-rolled "
                  "wrap that is off by one breaks V = D - S telescoping",
    "stale-suppression": "allow() comment on a line that no longer violates "
                         "the rule — remove it",
    "hot-no-alloc": "heap allocation reachable from a DDPM_HOT function — "
                    "hoist into pooled/pre-reserved state built at "
                    "construction",
    "hot-no-virtual": "virtual dispatch reachable from a DDPM_HOT function — "
                      "precompute through a table or devirtualize via a "
                      "concrete member",
    "hot-no-lock": "lock/atomic-RMW reachable from a DDPM_HOT function — "
                   "the simulator hot loop is single-threaded by design; "
                   "synchronization there is pure overhead",
    "hot-no-throw-io": "throw or console I/O reachable from a DDPM_HOT "
                       "function — report through counters/return values",
    "hot-no-div": "integer division/modulo with a non-constant divisor "
                  "reachable from a DDPM_HOT function — a hardware divide "
                  "partially serializes the pipeline; use a power-of-two "
                  "mask/shift, hoist the divisor to a constant, or "
                  "precompute a table",
    "layout-certified": "DDPM_HOT_STATE layout not certified — every "
                        "hot-state record needs a DDPM_HOT_LAYOUT(size, "
                        "align) pin so growth shows up in review",
    "det-taint": "nondeterminism reaches a determinism sink — thread/"
                 "environment/address-order values must not flow into "
                 "snapshot/merge/report/JSON/digest emitters; sort, seed, "
                 "or hoist out of the sink closure",
    "shard-isolation": "DDPM_SHARD_STATE crossed outside its sanctioned "
                       "path — shard state belongs to its owner, and on "
                       "sink paths may only flow through a "
                       "DDPM_SHARD_MERGE closure",
    "rng-stream-discipline": "worker-closure RNG not derived from an "
                             "explicit stream — seed from jump_stream()/"
                             "long_jump() or a per-task seed argument, "
                             "never a literal or the default seed shared "
                             "across workers",
    "tick-domain": "arithmetic mixes sim-tick and window-index integer "
                   "domains — make the conversion explicit with "
                   "SimTime(...)/WindowIndex(...)",
}

NARROWING_EXEMPT = re.compile(r"src/packet/marking_field\.")
WALLCLOCK_ALLOW = re.compile(r"$^")  # no allowlisted files in src/ today
# The ring helpers themselves are the one audited home for wrap arithmetic:
# the coord.hpp free functions, the CartesianTopology id<->coord codec, and
# any function named ring_delta (Torus::ring_delta and its fixtures).
TORUS_WRAP_EXEMPT_FILE = re.compile(r"src/topology/(coord|cartesian)\.")
TORUS_WRAP_EXEMPT_FN = ("ring_delta", "ring_shortest_delta")


def result_path_functions(functions: dict) -> set:
    """Forward closure (by simple name) of seed functions."""
    by_name: dict[str, list] = {}
    for fi in functions.values():
        by_name.setdefault(fi.name, []).append(fi)
    seeds = [fi for fi in functions.values() if RESULT_PATH_SEED.search(fi.name)]
    reach = set()
    work = list(seeds)
    while work:
        fi = work.pop()
        if fi.qname in reach:
            continue
        reach.add(fi.qname)
        for callee in fi.calls:
            for target in by_name.get(callee, []):
                if target.qname not in reach:
                    work.append(target)
    return reach


# --------------------------------------------------------------------------
# Hot-path pass (shared by both frontends)
# --------------------------------------------------------------------------

def merged_functions(units: list) -> dict:
    """qname -> FunctionInfo across all units (declaration in the header,
    definition in the .cpp, calls unioned)."""
    fns: dict[str, FunctionInfo] = {}
    for u in units:
        for q, fi in u.functions.items():
            if q in fns:
                fns[q].calls |= fi.calls
                fns[q].hot = fns[q].hot or fi.hot
            else:
                fns[q] = FunctionInfo(fi.qname, fi.name, fi.cls, fi.file,
                                      fi.line, set(fi.calls), fi.hot)
    return fns


def forward_closure(fns: dict, seeds) -> set:
    """Qnames reachable (by simple-name call edges) from the seed
    FunctionInfos. Same resolution as result_path_functions: a call
    through a virtual pulls in every same-named definition. That
    overapproximation is deliberate — the caller cannot prove at the call
    site which override runs, so every candidate implementation inherits
    the obligation."""
    by_name: dict[str, list] = {}
    for fi in fns.values():
        by_name.setdefault(fi.name, []).append(fi)
    reach: set = set()
    work = list(seeds)
    while work:
        fi = work.pop()
        if fi.qname in reach:
            continue
        reach.add(fi.qname)
        for callee in fi.calls:
            for target in by_name.get(callee, []):
                if target.qname not in reach:
                    work.append(target)
    return reach


def hot_closure(units: list) -> set:
    """Qnames reachable from DDPM_HOT roots."""
    fns = merged_functions(units)
    return forward_closure(fns, [fi for fi in fns.values() if fi.hot])


def hot_pass_sites(units: list, class_layout: dict) -> list:
    """Hot-path rule sites: lexical scans over the line extents of every
    function in the DDPM_HOT closure, plus layout certification. Runs on
    TextualUnits for BOTH frontends, so findings (and ratchet fingerprints)
    are identical by construction; `class_layout` (libclang only) merely
    adds the declared-vs-real cross-check."""
    reach = hot_closure(units)
    virt: set = set()
    for u in units:
        for cname, ci_rec in u.classes.items():
            if ci_rec.declares_virtual:
                virt.add(cname)
    sites: list[Fact] = []
    for u in units:
        # reserve-dominates: a receiver reserved anywhere in this file is
        # treated as slab-backed for its growth calls.
        reserved = {m.group(1) for m in HOT_RESERVE_RE.finditer(u.clean)}
        flagged: set = set()

        def emit(rule, line, ctx, detail):
            if (rule, line) in flagged:
                return
            flagged.add((rule, line))
            sites.append(Fact(rule, u.rel, line, ctx, detail))

        def recv_type(recv: str, qname: str):
            t = u._local_types.get((qname, recv))
            if t:
                return t
            fi = u.functions.get(qname)
            cls = fi.cls if fi else ""
            if cls and recv in u.members.get(cls, {}):
                return u.members[cls][recv]
            hits = {u.members[c][recv] for c in u.members
                    if recv in u.members[c]}
            if len(hits) == 1:
                return next(iter(hits))
            return None  # unknown or ambiguous: stay silent

        for qname, start, end in u.fn_extents:
            if qname not in reach:
                continue
            for n in range(start, min(end, len(u.clean_lines)) + 1):
                lt = u.clean_lines[n - 1]
                for rx, what in HOT_ALLOC_RES:
                    if rx.search(lt):
                        emit("hot-no-alloc", n, qname, what)
                for m in HOT_GROWTH_RE.finditer(lt):
                    recv, meth = m.group(1), m.group(2)
                    if recv in reserved:
                        continue
                    t = recv_type(recv, qname)
                    if t and HOT_GROWTH_TYPES.search(t):
                        emit("hot-no-alloc", n, qname,
                             f"{recv}.{meth}() may grow without a "
                             "dominating reserve()")
                for m in HOT_MEMBER_CALL_RE.finditer(lt):
                    recv, meth = m.group(1), m.group(2)
                    t = recv_type(recv, qname)
                    if not t:
                        continue
                    hit = next((w for w in re.findall(r"[A-Za-z_]\w*", t)
                                if w in virt), None)
                    if hit:
                        emit("hot-no-virtual", n, qname,
                             f"{recv}->{meth}() dispatches through "
                             f"polymorphic '{hit}'")
                for rx, what in HOT_LOCK_RES:
                    if rx.search(lt):
                        emit("hot-no-lock", n, qname, what)
                for rx, what in HOT_THROW_IO_RES:
                    if rx.search(lt):
                        emit("hot-no-throw-io", n, qname, what)
                for op, tok in hot_div_matches(lt):
                    emit("hot-no-div", n, qname,
                         f"'{op}' with non-constant right operand '{tok}'")
    for u in units:
        declared = {name: (size, align, line)
                    for name, size, align, line in u.hot_layouts}
        for name, line in u.hot_states:
            if name not in declared:
                sites.append(Fact(
                    "layout-certified", u.rel, line, name,
                    f"DDPM_HOT_STATE '{name}' has no DDPM_HOT_LAYOUT pin "
                    "in this file"))
        for name, (size, align, line) in declared.items():
            real = class_layout.get(name)
            if real is not None and (real[0] != size or real[1] != align):
                sites.append(Fact(
                    "layout-certified", u.rel, line, name,
                    f"declared ({size}, {align}) but the real layout is "
                    f"({real[0]}, {real[1]})"))
    return sites


# --------------------------------------------------------------------------
# Interprocedural dataflow pass: det-taint / shard-isolation /
# rng-stream-discipline / tick-domain (shared by both frontends)
# --------------------------------------------------------------------------

def dataflow_pass_sites(units: list) -> list:
    """Taint-engine rule sites over the whole-program call graph.

    Like hot_pass_sites, this runs on TextualUnits under BOTH frontends,
    so the flagged lines — and therefore the ratchet fingerprints — are
    frontend-independent by construction. Closures are forward reachability
    over simple-name call edges from three seed sets: determinism sinks
    (result-path-named functions plus DDPM_DET_SINK annotations), shard
    merge points (DDPM_SHARD_MERGE), and worker dispatchers (any function
    whose body touches ParallelRunner / for_each_index)."""
    fns = merged_functions(units)

    det_source_pairs: set = set()    # (cls-or-empty, simple name)
    det_sink_pairs: set = set()
    merge_pairs: set = set()
    shard_states: list = []          # (owner class, member, rel, line)
    for u in units:
        det_source_pairs |= u.det_sources
        det_sink_pairs |= u.det_sinks
        merge_pairs |= u.shard_merges
        for cls, var, line in u.shard_states:
            shard_states.append((cls, var, u.rel, line))

    def annotated(fi, pairs) -> bool:
        return any(fi.name == n and (c == "" or fi.cls == c)
                   for c, n in pairs)

    seed_named = [fi for fi in fns.values()
                  if RESULT_PATH_SEED.search(fi.name)]
    seed_reach = forward_closure(fns, seed_named)
    sink_reach = forward_closure(
        fns, seed_named + [fi for fi in fns.values()
                           if annotated(fi, det_sink_pairs)])
    merge_roots = [fi for fi in fns.values() if annotated(fi, merge_pairs)]
    merge_reach = forward_closure(fns, merge_roots)

    # DDPM_DET_SOURCE call sites are detected lexically (name + optional
    # template args + '('), so `pool.map<R>(...)` counts even though the
    # tokenizer records no call edge for templated calls.
    src_call_res = {
        name: re.compile(r"\b" + re.escape(name) + r"\s*(?:<[^;(){}]*>)?\s*\(")
        for name in {n for _c, n in det_source_pairs}
    }

    allow_map: dict = {}             # (rel, line) -> set(rules), raw text
    for u in units:
        for n, raw in enumerate(u.lines, 1):
            m = ALLOW_RE.search(raw)
            if m:
                allow_map[(u.rel, n)] = {r.strip()
                                         for r in m.group(1).split(",")}

    sites: list[Fact] = []
    flagged: set = set()

    def emit(rule, rel, line, ctx, detail):
        if (rule, rel, line) in flagged:
            return
        flagged.add((rule, rel, line))
        sites.append(Fact(rule, rel, line, ctx, detail))

    # ---- per-function nondeterminism-source inventory --------------------
    # Collected everywhere (not just sink closures): the merge-cleanliness
    # check needs them for closures that are not sinks. A site allowed via
    # `allow(det-taint)` still reaches det-taint itself (the normal
    # suppression accounting marks it) but no longer poisons a merge.
    source_sites: dict[str, list] = {}   # qname -> [(rel, line, what, allowed)]
    for u in units:
        for qname, start, end in u.fn_extents:
            fi = fns.get(qname)
            own = fi.name if fi else ""
            for n in range(start, min(end, len(u.clean_lines)) + 1):
                lt = u.clean_lines[n - 1]
                hits = []
                for rx, what in DET_SOURCE_LEX:
                    if rx.search(lt):
                        hits.append(what)
                if DET_POINTER_KEY_RE.search(lt):
                    hits.append("container keyed on a pointer value")
                for name, rx in src_call_res.items():
                    # the annotated function's own head/recursion is not a
                    # call into nondeterminism
                    if name != own and rx.search(lt):
                        hits.append(f"call to DDPM_DET_SOURCE '{name}'")
                allowed = "det-taint" in allow_map.get((u.rel, n), ())
                for what in hits:
                    source_sites.setdefault(qname, []).append(
                        (u.rel, n, what, allowed))

    # ---- det-taint: sources inside the determinism-sink closure ----------
    for qname in sorted(source_sites):
        if qname not in sink_reach:
            continue
        for rel, n, what, _allowed in source_sites[qname]:
            emit("det-taint", rel, n, qname,
                 f"{what} on a determinism-sink path")

    # Unordered-container walks only the annotation vocabulary can see:
    # inside the DDPM_DET_SINK closure but NOT on a result-path-named
    # closure (those remain ordered-iteration findings — no double report).
    for u in units:
        for f in u.sites:
            if f.rule != "ordered-iteration":
                continue
            ctx = f.context
            if ctx in sink_reach and ctx not in seed_reach \
                    and not RESULT_PATH_SEED.search(ctx.split("::")[-1]):
                emit("det-taint", u.rel, f.line, ctx,
                     f"{f.detail} — reachable from a DDPM_DET_SINK")

    # ---- shard-isolation -------------------------------------------------
    owners: dict[str, set] = {}
    state_res: dict = {}
    for cls, var, _srel, _sline in shard_states:
        owners.setdefault(var, set()).add(cls)
        state_res.setdefault(var, re.compile(r"\b" + re.escape(var) + r"\b"))
    if shard_states:
        for u in units:
            for qname, start, end in u.fn_extents:
                fi = fns.get(qname)
                fcls = fi.cls if fi else ""
                for n in range(start, min(end, len(u.clean_lines)) + 1):
                    lt = u.clean_lines[n - 1]
                    for var, rx in state_res.items():
                        if not rx.search(lt):
                            continue
                        if fcls not in owners[var]:
                            emit("shard-isolation", u.rel, n, qname,
                                 f"'{var}' (DDPM_SHARD_STATE of "
                                 f"{'/'.join(sorted(owners[var]))}) touched "
                                 "outside the owning class")
                        elif qname in sink_reach \
                                and not (fi and annotated(fi, merge_pairs)) \
                                and qname not in merge_reach:
                            emit("shard-isolation", u.rel, n, qname,
                                 f"sink-path access to shard state '{var}' "
                                 "outside a DDPM_SHARD_MERGE closure")

    # DDPM_SHARD_MERGE functions must be det-taint-clean across their
    # whole closure (an allowed source no longer poisons them; an
    # unordered walk does).
    for root_fi in sorted(merge_roots, key=lambda fi: fi.qname):
        sub = forward_closure(fns, [root_fi])
        dirty = None
        for q in sorted(sub):
            for _rel, _n, what, allowed in source_sites.get(q, []):
                if not allowed:
                    dirty = (q, what)
                    break
            if dirty:
                break
        if dirty is None:
            for u in units:
                for f in u.sites:
                    if f.rule == "ordered-iteration" and f.context in sub \
                            and not ({"ordered-iteration", "det-taint"} &
                                     allow_map.get((f.file, f.line), set())):
                        dirty = (f.context, f.detail)
                        break
                if dirty:
                    break
        if dirty is not None:
            emit("shard-isolation", root_fi.file, root_fi.line,
                 root_fi.qname,
                 f"DDPM_SHARD_MERGE '{root_fi.name}' reaches a "
                 f"nondeterminism source ({dirty[1]} in "
                 f"{dirty[0].split('::')[-1]})")

    # ---- rng-stream-discipline -------------------------------------------
    extent_text: dict[str, str] = {}
    for u in units:
        for qname, start, end in u.fn_extents:
            seg = "\n".join(u.clean_lines[start - 1:min(end,
                                                        len(u.clean_lines))])
            extent_text[qname] = extent_text.get(qname, "") + "\n" + seg
    dispatchers = [fns[q] for q, txt in sorted(extent_text.items())
                   if q in fns and RNG_DISPATCH_RE.search(txt)]
    worker_reach = forward_closure(fns, dispatchers)
    for u in units:
        for qname, start, end in u.fn_extents:
            if qname not in worker_reach:
                continue
            for n in range(start, min(end, len(u.clean_lines)) + 1):
                lt = u.clean_lines[n - 1]
                for m in RNG_DECL_RE.finditer(lt):
                    args = (m.group(2) or m.group(3) or "").strip()
                    if args and RNG_OK_ARG_RE.search(args):
                        continue
                    what = (f"Rng {m.group(1)}(...) seeded from a "
                            "worker-shared constant" if args else
                            f"Rng {m.group(1)} with the default seed")
                    emit("rng-stream-discipline", u.rel, n, qname, what)
                for m in RNG_DEFAULT_DECL_RE.finditer(lt):
                    emit("rng-stream-discipline", u.rel, n, qname,
                         f"Rng {m.group(1)} with the default seed")

    # ---- tick-domain -----------------------------------------------------
    # Self-gating on the WindowIndex vocabulary: a file that never names
    # the window domain cannot mix it.
    for u in units:
        if "WindowIndex" not in u.clean:
            continue
        for qname, start, end in u.fn_extents:
            fi = fns.get(qname)
            fcls = fi.cls if fi else ""
            for n in range(start, min(end, len(u.clean_lines)) + 1):
                lt = u.clean_lines[n - 1]
                if not TICK_MIX_OP_RE.search(lt):
                    continue
                if TICK_CONVERT_RE.search(lt):
                    continue  # explicit conversion: the sanctioned crossing
                domains: set = set()
                for tok in set(re.findall(r"[A-Za-z_]\w*", lt)):
                    ty = u._local_types.get((qname, tok))
                    if ty is None and fcls:
                        ty = u.members.get(fcls, {}).get(tok)
                    if ty is None:
                        hits2 = {u.members[c][tok] for c in u.members
                                 if tok in u.members[c]}
                        ty = next(iter(hits2)) if len(hits2) == 1 else None
                    if ty is None:
                        continue
                    for rx, dom in TICK_DOMAIN_TYPES:
                        if rx.search(ty):
                            domains.add(dom)
                            break
                if len(domains) > 1:
                    emit("tick-domain", u.rel, n, qname,
                         "mixes " + " and ".join(sorted(domains)) +
                         "-domain operands without explicit conversion")
    return sites


def evaluate(facts: Facts, scope_prefixes: tuple) -> list:
    """Turns facts into findings (suppression/baseline not yet applied)."""
    findings: list[Finding] = []
    reach = result_path_functions(facts.functions)

    def in_scope(rel: str) -> bool:
        return any(rel.startswith(p) for p in scope_prefixes)

    for f in facts.sites:
        if not in_scope(f.file):
            continue
        if f.rule == "ordered-iteration":
            if f.context and f.context not in reach \
                    and not RESULT_PATH_SEED.search(f.context.split("::")[-1]):
                continue
            msg = MESSAGES[f.rule] + f" ({f.detail}; via result path "
            msg += f"'{f.context.split('::')[-1]}')"
        elif f.rule == "no-wall-clock":
            if WALLCLOCK_ALLOW.search(f.file):
                continue
            msg = MESSAGES[f.rule] + f" ({f.detail})"
        elif f.rule == "narrowing-in-marking":
            if NARROWING_EXEMPT.search(f.file):
                continue
            msg = MESSAGES[f.rule] + f" ({f.detail})"
        elif f.rule == "torus-wrap":
            if TORUS_WRAP_EXEMPT_FILE.search(f.file):
                continue
            if f.context.split("::")[-1] in TORUS_WRAP_EXEMPT_FN:
                continue
            msg = MESSAGES[f.rule] + f" ({f.detail})"
        else:
            msg = MESSAGES[f.rule] + f" ({f.detail})"
        findings.append(Finding(f.rule, f.file, f.line, f.context, msg))

    for ci_rec in facts.classes.values():
        if not in_scope(ci_rec.file) or not ci_rec.declares_virtual:
            continue
        # Derived classes (any base clause) are out of scope: the rule
        # targets the polymorphic bases users hold handles to, and cindex
        # cannot portably tell an override from a new virtual.
        if ci_rec.has_bases:
            continue
        if not ci_rec.has_virtual_dtor and ci_rec.dtor_access == "public":
            findings.append(Finding(
                "virtual-dtor", ci_rec.file, ci_rec.line, ci_rec.name,
                f"polymorphic base '{ci_rec.name}' lacks a virtual (or "
                "protected) destructor — deleting via a base pointer is UB"))
        if not ci_rec.copy_declared:
            findings.append(Finding(
                "virtual-dtor", ci_rec.file, ci_rec.line, ci_rec.name,
                f"polymorphic base '{ci_rec.name}' leaves copy operations "
                "implicit (C.67): default/delete them as protected to "
                "prevent slicing through a base reference"))
        elif ci_rec.copy_access == "public" and not ci_rec.copy_deleted:
            findings.append(Finding(
                "virtual-dtor", ci_rec.file, ci_rec.line, ci_rec.name,
                f"polymorphic base '{ci_rec.name}' has public non-deleted "
                "copy operations — slicing hazard (C.67); make them "
                "protected or deleted"))
    return findings


# --------------------------------------------------------------------------
# Suppressions, fingerprints, baseline
# --------------------------------------------------------------------------

def collect_allow_comments(files, root: Path):
    """{(rel, line) -> set(rules)} from `// ddpm-analyze: allow(a,b)`."""
    out = {}
    for path in files:
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        rel = path.relative_to(root).as_posix()
        for n, line in enumerate(text.splitlines(), 1):
            m = ALLOW_RE.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                out[(rel, n)] = rules
    return out


def fingerprint(finding: Finding, line_text: str, occurrence: int) -> str:
    norm = re.sub(r"\s+", " ", line_text.strip())
    blob = "|".join([finding.rule, finding.file, finding.context, norm,
                     str(occurrence)])
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def assign_fingerprints(findings, root: Path) -> None:
    counts: dict[str, int] = {}
    texts: dict[str, list] = {}
    for f in findings:
        if f.file not in texts:
            try:
                texts[f.file] = (root / f.file).read_text(
                    encoding="utf-8", errors="replace").splitlines()
            except OSError:
                texts[f.file] = []
        lines = texts[f.file]
        lt = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        norm = re.sub(r"\s+", " ", lt.strip())
        key = f"{f.rule}|{f.file}|{f.context}|{norm}"
        occ = counts.get(key, 0)
        counts[key] = occ + 1
        f.fingerprint = fingerprint(f, lt, occ)


def load_baseline(path: Path) -> dict:
    if not path.is_file():
        return {}
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    return data.get("entries", {})


def write_baseline(path: Path, findings) -> None:
    entries = {
        f.fingerprint: {"rule": f.rule, "file": f.file, "context": f.context}
        for f in findings
    }
    data = {
        "version": 1,
        "tool": "ddpm_analyze",
        "comment": "Ratchet baseline: pre-existing findings tracked by "
                   "line-insensitive fingerprint. New findings fail; fix "
                   "debt and regenerate with --update-baseline.",
        "entries": dict(sorted(entries.items())),
    }
    path.write_text(json.dumps(data, indent=2) + "\n")


def apply_suppressions_and_baseline(findings, allows, baseline):
    """Marks findings suppressed/baselined; returns (new, stale_allows,
    stale_baseline, used_allow_keys)."""
    used = set()
    for f in findings:
        rules = allows.get((f.file, f.line))
        if rules and f.rule in rules:
            f.suppressed = True
            used.add((f.file, f.line, f.rule))
        elif f.fingerprint in baseline:
            f.baselined = True
    stale_allows = []
    for (rel, line), rules in sorted(allows.items()):
        for rule in sorted(rules):
            if rule not in RULES:
                stale_allows.append(Finding(
                    "stale-suppression", rel, line, "",
                    f"allow({rule}) names an unknown rule"))
            elif (rel, line, rule) not in used:
                stale_allows.append(Finding(
                    "stale-suppression", rel, line, "",
                    f"allow({rule}) " + MESSAGES["stale-suppression"]))
    live = {f.fingerprint for f in findings}
    stale_baseline = sorted(fp for fp in baseline if fp not in live)
    new = [f for f in findings if not f.suppressed and not f.baselined]
    return new, stale_allows, stale_baseline


# --------------------------------------------------------------------------
# Frontend selection & run driver
# --------------------------------------------------------------------------

def make_frontend(choice: str, compile_commands: Path | None):
    if choice in ("auto", "libclang"):
        try:
            if compile_commands is None or not compile_commands.is_file():
                raise RuntimeError("no compile_commands.json")
            fe = LibclangFrontend(compile_commands)
            return fe, None
        except Exception as e:  # ImportError, LibclangError, RuntimeError
            if choice == "libclang":
                return None, f"libclang frontend unavailable: {e}"
            reason = f"libclang unavailable ({e.__class__.__name__}); " \
                     "using bundled textual frontend"
            fe = TextualFrontend()
            fe.note = reason
            return fe, None
    if choice == "textual":
        return TextualFrontend(), None
    return None, f"unknown frontend '{choice}'"


def gather_files(root: Path, dirs):
    files = []
    for d in dirs:
        base = root / d
        if base.is_file():
            files.append(base)
            continue
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in (".hpp", ".h", ".cpp", ".cc") and p.is_file():
                files.append(p)
    return files


def facts_cache_key(files, root: Path, frontend) -> str:
    """Digest of everything the parsed-facts model depends on: the tool
    version, the frontend, and every analyzed file's path + content."""
    h = hashlib.sha256()
    h.update(f"ddpm_analyze/{TOOL_VERSION}/{frontend.name}".encode())
    for p in files:
        h.update(p.relative_to(root).as_posix().encode())
        h.update(b"\0")
        try:
            h.update(p.read_bytes())
        except OSError:
            h.update(b"<unreadable>")
        h.update(b"\0")
    return h.hexdigest()


def load_facts_cache(path: Path, key: str):
    import pickle
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except Exception:  # missing, truncated, or incompatible pickle
        return None
    if not isinstance(payload, dict) or payload.get("key") != key:
        return None
    facts = payload.get("facts")
    return facts if isinstance(facts, Facts) else None


def store_facts_cache(path: Path, key: str, facts) -> None:
    import pickle
    tmp = path.with_suffix(path.suffix + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            pickle.dump({"tool": "ddpm_analyze", "version": TOOL_VERSION,
                         "key": key, "facts": facts}, fh)
        tmp.replace(path)
    except OSError:
        pass  # a cold cache next run, not an analysis failure


def run_analysis(root: Path, dirs, frontend, scope_prefixes,
                 cache_path: Path | None = None):
    files = gather_files(root, dirs)
    key = facts_cache_key(files, root, frontend) if cache_path else None
    facts = load_facts_cache(cache_path, key) if cache_path else None
    if facts is not None:
        print("ddpm_analyze: facts cache hit "
              f"({cache_path.name}, {len(files)} files unchanged)")
    if facts is None:
        facts = frontend.extract(files, root)
        # The hot-path pass is textual under both frontends so the flagged
        # lines match exactly; the textual frontend's already-parsed units
        # are reused, the libclang frontend pays one extra lexical pass.
        units = getattr(frontend, "units", None)
        if not units:
            units = build_textual_units(files, root)
        facts.sites.extend(hot_pass_sites(units, facts.class_layout))
        facts.sites.extend(dataflow_pass_sites(units))
        if cache_path:
            store_facts_cache(cache_path, key, facts)
    findings = evaluate(facts, scope_prefixes)
    assign_fingerprints(findings, root)
    allows = collect_allow_comments(files, root)
    return findings, allows, facts


def print_findings(findings, stream=sys.stdout):
    for f in sorted(findings, key=lambda x: (x.file, x.line, x.rule)):
        tag = ""
        if f.baselined:
            tag = " [baselined]"
        elif f.suppressed:
            tag = " [suppressed]"
        print(f"{f.file}:{f.line}: [{f.rule}]{tag} {f.message} "
              f"(fp {f.fingerprint})", file=stream)


# --------------------------------------------------------------------------
# Fixture self-test
# --------------------------------------------------------------------------

def collect_expectations(path: Path):
    out = {}
    for n, line in enumerate(path.read_text(encoding="utf-8",
                                            errors="replace").splitlines(), 1):
        m = EXPECT_RE.search(line)
        if m:
            out.setdefault(n, set()).update(
                r.strip() for r in m.group(1).split(","))
    return out


def self_test(root: Path, fixture_dir: Path, frontend) -> int:
    failures = []
    passed = 0
    fixtures = sorted(fixture_dir.glob("*.cpp"))
    if not fixtures:
        print(f"self-test: no fixtures in {fixture_dir}", file=sys.stderr)
        return 1
    for fx in fixtures:
        rel = fx.relative_to(root).as_posix()
        findings, allows, _ = run_analysis(
            root, [rel], frontend, scope_prefixes=(rel,))
        new, stale_allows, _ = apply_suppressions_and_baseline(
            findings, allows, baseline={})
        reported = {}
        for f in new + stale_allows:
            reported.setdefault(f.line, set()).add(f.rule)
        expected = collect_expectations(fx)
        name = fx.name
        ok = True
        for line, rules in sorted(expected.items()):
            for rule in sorted(rules):
                if rule not in reported.get(line, set()):
                    failures.append(f"{name}:{line}: expected [{rule}] "
                                    "but the analyzer did not flag it")
                    ok = False
        for line, rules in sorted(reported.items()):
            for rule in sorted(rules):
                if rule not in expected.get(line, set()):
                    failures.append(f"{name}:{line}: unexpected [{rule}] "
                                    "finding")
                    ok = False
        if name.startswith("good_") and reported:
            ok = False  # already reported above as unexpected
        if ok:
            passed += 1
            must = "must-flag" if expected else "must-pass"
            print(f"self-test: PASS {name} ({must}, "
                  f"{sum(len(r) for r in expected.values())} expectation(s))")
    rc = 0
    # ratchet + fingerprint mechanics, exercised on the first bad fixture
    bad = next((f for f in fixtures if f.name.startswith("bad_")), None)
    if bad is not None:
        rc |= _self_test_ratchet(root, bad, frontend)
    if failures:
        print(f"self-test: frontend={frontend.name}", file=sys.stderr)
        for msg in failures:
            print("self-test: FAIL " + msg, file=sys.stderr)
    total_note = f"{passed}/{len(fixtures)} fixtures clean, frontend={frontend.name}"
    if failures or rc:
        print(f"self-test: FAILED ({total_note})", file=sys.stderr)
        return 1
    print(f"self-test: OK ({total_note})")
    return 0


def _self_test_ratchet(root: Path, bad_fixture: Path, frontend) -> int:
    """Baseline round-trip: baselined findings don't fail; fingerprints
    survive line shifts; removing the violation strands the baseline."""
    import tempfile

    rel = bad_fixture.relative_to(root).as_posix()
    findings, allows, _ = run_analysis(root, [rel], frontend, (rel,))
    findings = [f for f in findings if not allows.get((f.file, f.line))]
    if not findings:
        print("self-test: FAIL ratchet: no findings in " + rel, file=sys.stderr)
        return 1
    with tempfile.TemporaryDirectory(dir=str(root / "tests")) as td:
        bl = Path(td) / "baseline.json"
        write_baseline(bl, findings)
        baseline = load_baseline(bl)
        new, _, stale_bl = apply_suppressions_and_baseline(
            findings, {}, baseline)
        if new:
            print("self-test: FAIL ratchet: baselined findings still "
                  "reported as new", file=sys.stderr)
            return 1
        if stale_bl:
            print("self-test: FAIL ratchet: live findings reported stale",
                  file=sys.stderr)
            return 1
        # line-shift stability: prepend blank lines, re-analyze a copy
        shifted_dir = Path(td)
        shifted = shifted_dir / ("shift_" + bad_fixture.name)
        shifted.write_text("\n\n\n" + bad_fixture.read_text())
        srel = shifted.relative_to(root).as_posix()
        f2, _, _ = run_analysis(root, [srel], frontend, (srel,))
        fp1 = sorted({f.fingerprint for f in findings})
        fp2 = sorted({f.fingerprint.replace("", "") for f in f2})
        # fingerprints hash file path too; compare via rule+context+count
        sig1 = sorted((f.rule, f.context.split("::")[-1]) for f in findings)
        sig2 = sorted((f.rule, f.context.split("::")[-1]) for f in f2)
        if sig1 != sig2:
            print("self-test: FAIL ratchet: line-shifted copy changed the "
                  f"finding set ({sig1} vs {sig2})", file=sys.stderr)
            return 1
        del fp1, fp2
    print("self-test: PASS ratchet mechanics (baseline round-trip, "
          "line-shift stability)")
    return 0


# --------------------------------------------------------------------------
# main
# --------------------------------------------------------------------------

def find_compile_commands(root: Path, explicit: str | None):
    if explicit:
        return Path(explicit)
    for cand in sorted(root.glob("build*/compile_commands.json")):
        return cand
    return None


def main(argv) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("root", nargs="?", default=".", help="repo root")
    ap.add_argument("--compile-commands", default=None)
    ap.add_argument("--baseline", default="tools/ddpm_analyze_baseline.json")
    ap.add_argument("--frontend", choices=("auto", "libclang", "textual"),
                    default="auto")
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("--self-test", metavar="DIR", default=None)
    ap.add_argument("--json", metavar="OUT", default=None)
    ap.add_argument("--only", metavar="RULE[,RULE...]", default=None)
    ap.add_argument("--facts-cache", metavar="PATH", default=None)
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv[1:])

    if args.list_rules:
        for r in RULES + META_RULES:
            print(f"{r}: {MESSAGES[r]}")
        return 0

    only = None
    if args.only is not None:
        only = {r.strip() for r in args.only.split(",") if r.strip()}
        unknown = sorted(only - set(RULES))
        if not only or unknown:
            what = ", ".join(unknown) if unknown else "(empty)"
            print(f"ddpm_analyze: --only names unknown rule(s): {what}",
                  file=sys.stderr)
            print("ddpm_analyze: known rules: " + ", ".join(RULES),
                  file=sys.stderr)
            return 2
        if args.update_baseline:
            print("ddpm_analyze: --update-baseline cannot be combined with "
                  "--only (a scoped run would drop every other rule's "
                  "baseline entries)", file=sys.stderr)
            return 2

    root = Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"ddpm_analyze: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    cc = find_compile_commands(root, args.compile_commands)
    frontend, err = make_frontend(args.frontend, cc)
    if frontend is None:
        print(f"ddpm_analyze: SKIPPED — {err}", file=sys.stderr)
        return SKIP_EXIT
    if getattr(frontend, "note", None):
        print(f"ddpm_analyze: note: {frontend.note}")

    if args.self_test:
        st = self_test(root, Path(args.self_test).resolve(), frontend)
        if st != 0:
            return st

    cache_path = Path(args.facts_cache) if args.facts_cache else None
    findings, allows, facts = run_analysis(
        root, ["src"], frontend, scope_prefixes=("src/",),
        cache_path=cache_path)
    baseline_path = root / args.baseline
    if args.update_baseline:
        keep = [f for f in findings
                if not (allows.get((f.file, f.line)) or set()) & {f.rule}]
        write_baseline(baseline_path, keep)
        print(f"ddpm_analyze: baseline updated with {len(keep)} entr"
              f"{'y' if len(keep) == 1 else 'ies'} -> {args.baseline}")
        return 0

    baseline = load_baseline(baseline_path)
    if only is not None:
        # Scoped run: other rules' findings, allow() comments, and baseline
        # entries are out of scope — not reported, not consumed, not stale.
        findings = [f for f in findings if f.rule in only]
        allows = {k: rules & only for k, rules in allows.items()
                  if rules & only}
        baseline = {fp: e for fp, e in baseline.items()
                    if e.get("rule") in only}
    new, stale_allows, stale_baseline = apply_suppressions_and_baseline(
        findings, allows, baseline)

    print_findings(findings)
    for f in stale_allows:
        print(f"{f.file}:{f.line}: [stale-suppression] {f.message}")

    if args.json:
        payload = {
            "frontend": frontend.name,
            "findings": [vars(f) for f in findings + stale_allows],
            "stale_baseline": stale_baseline,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")

    n_sup = sum(1 for f in findings if f.suppressed)
    n_base = sum(1 for f in findings if f.baselined)
    print(f"ddpm_analyze: frontend={frontend.name} files=src/ "
          f"functions={len(facts.functions)} classes={len(facts.classes)} | "
          f"{len(new)} new, {n_base} baselined, {n_sup} suppressed, "
          f"{len(stale_allows)} stale suppression(s), "
          f"{len(stale_baseline)} stale baseline entr"
          f"{'y' if len(stale_baseline) == 1 else 'ies'}")

    if stale_baseline:
        for fp in stale_baseline:
            e = baseline.get(fp, {})
            print(f"ddpm_analyze: stale baseline entry {fp} "
                  f"({e.get('rule')} in {e.get('file')}) — debt was fixed; "
                  "regenerate with --update-baseline", file=sys.stderr)
    if new or stale_allows or stale_baseline:
        return 1
    print("ddpm_analyze: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
