#!/usr/bin/env python3
"""ddpm_bench_diff.py — perf ratchet over BENCH_kernel.json snapshots.

Usage:
  python3 tools/ddpm_bench_diff.py BASELINE.json CURRENT.json
                                   [--tolerance 0.10] [--report OUT.md]
                                   [--floor NAME=VALUE ...]

Compares a freshly measured kernel-bench JSON against the committed
baseline, metric by metric. A metric that REGRESSES by more than the
tolerance (default 10%) fails the run; improvements of any size pass —
the ratchet only turns forward. When the numbers genuinely moved (new
engine, new hardware), regenerate the committed baseline deliberately:

  ./build-release/bench/bench_kernel --json BENCH_kernel.json

and commit it together with the change that moved it.

Direction is inferred from the unit: throughput units (ops/s, steps/s,
x) are better-higher; duration units (s, ms) are better-lower. Metrics
present on only one side are reported but never fail the diff (benches
come and go); what fails is only a shared metric moving the wrong way.

Provenance (compiler, build type, telemetry gate) is printed and
mismatches are WARNED, not failed: a RelWithDebInfo-vs-Release diff is
almost certainly measuring the build type, not the change under test.
Cross-host comparisons are similarly noisy — pick the tolerance to match
how comparable the two environments really are.

Floors are absolute bounds, orthogonal to the relative tolerance: the
baseline JSON may carry a `"floors": {"metric": value}` object, and any
floored metric whose CURRENT value lands on the wrong side of its floor
fails the diff even if the relative move is within tolerance. Direction
follows the unit — a floor on a better-higher metric (x, ops/s) is a
minimum, on a duration it is a maximum. `--floor NAME=VALUE` (repeatable)
adds or overrides a floor from the command line. This is what keeps
`sweep_speedup` from ever drifting below parity one tolerance-sized
nibble at a time.

Exit codes: 0 ratchet holds, 1 regression beyond tolerance or floor
violation, 2 usage.
"""

import argparse
import json
import sys

# Units where larger is better; anything else (s, ms, ...) is a duration.
HIGHER_IS_BETTER_UNITS = {"ops/s", "steps/s", "x"}

PROVENANCE_KEYS = ("compiler", "build_type", "telemetry", "mode", "jobs")


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"ddpm_bench_diff: cannot read {path}: {e}")
    metrics = {}
    for r in doc.get("results", []):
        metrics[r["name"]] = (float(r["value"]), r.get("unit", ""))
    return doc, metrics


def main():
    ap = argparse.ArgumentParser(
        description="perf ratchet diff for BENCH_kernel.json")
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("current", help="freshly measured JSON")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="max fractional regression per metric "
                         "(default 0.10 = 10%%)")
    ap.add_argument("--report", metavar="OUT.md", default=None,
                    help="also write the table as markdown")
    ap.add_argument("--floor", metavar="NAME=VALUE", action="append",
                    default=[],
                    help="absolute floor for a metric; overrides the "
                         "baseline's floors object (repeatable)")
    args = ap.parse_args()
    if args.tolerance < 0:
        ap.error("--tolerance must be non-negative")

    base_doc, base = load(args.baseline)
    cur_doc, cur = load(args.current)

    floors = {}
    raw_floors = base_doc.get("floors", {})
    if not isinstance(raw_floors, dict):
        sys.exit(f"ddpm_bench_diff: 'floors' in {args.baseline} "
                 "must be an object")
    for name, value in raw_floors.items():
        try:
            floors[name] = float(value)
        except (TypeError, ValueError):
            sys.exit(f"ddpm_bench_diff: floor for {name!r} in "
                     f"{args.baseline} is not a number: {value!r}")
    for spec in args.floor:
        name, sep, value = spec.partition("=")
        if not sep or not name:
            ap.error(f"--floor expects NAME=VALUE, got {spec!r}")
        try:
            floors[name] = float(value)
        except ValueError:
            ap.error(f"--floor value for {name!r} is not a number: {value!r}")

    warnings = []
    for key in PROVENANCE_KEYS:
        bv, cv = base_doc.get(key), cur_doc.get(key)
        if bv != cv:
            warnings.append(f"provenance mismatch: {key}: "
                            f"baseline={bv!r} current={cv!r}")

    def floor_breach(name, cval, unit):
        """Floor verdict text, or None. Direction follows the unit: a floor
        on a better-higher metric is a minimum, on a duration a maximum."""
        if name not in floors:
            return None
        limit = floors[name]
        higher_better = unit in HIGHER_IS_BETTER_UNITS
        if higher_better and cval < limit:
            return f"FLOOR VIOLATION ({cval:g} < floor {limit:g})"
        if not higher_better and cval > limit:
            return f"FLOOR VIOLATION ({cval:g} > ceiling {limit:g})"
        return None

    for name in floors:
        if name not in cur:
            warnings.append(f"floored metric '{name}' missing from current")

    rows = []          # (name, unit, base, cur, delta_frac, verdict)
    regressions = []
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            cval, unit = cur[name]
            breach = floor_breach(name, cval, unit)
            if breach:
                regressions.append(name)
            rows.append((name, unit, None, cval, None,
                         breach or "new metric"))
            continue
        if name not in cur:
            rows.append((name, base[name][1], base[name][0], None, None,
                         "missing in current"))
            warnings.append(f"metric '{name}' present in baseline only")
            continue
        bval, unit = base[name]
        cval, _ = cur[name]
        higher_better = unit in HIGHER_IS_BETTER_UNITS
        breach = floor_breach(name, cval, unit)
        if bval == 0:
            if breach:
                regressions.append(name)
            rows.append((name, unit, bval, cval, None,
                         breach or "zero baseline"))
            continue
        delta = (cval - bval) / bval
        regress = -delta if higher_better else delta
        if breach:
            verdict = breach
            regressions.append(name)
        elif regress > args.tolerance:
            verdict = f"REGRESSION ({regress:+.1%} worse)"
            regressions.append(name)
        elif regress > 0:
            verdict = "ok (within tolerance)"
        else:
            verdict = "ok (improved)" if regress < 0 else "ok (unchanged)"
        rows.append((name, unit, bval, cval, delta, verdict))

    lines = [
        f"# bench diff: {args.current} vs baseline {args.baseline}",
        "",
        f"tolerance: {args.tolerance:.0%} regression per metric; "
        "improvements always pass (forward-only ratchet)",
        "",
    ]
    if floors:
        lines += [
            "floors (absolute, direction per unit): " +
            ", ".join(f"{n}={v:g}" for n, v in sorted(floors.items())),
            "",
        ]
    lines += [
        "| metric | unit | baseline | current | delta | verdict |",
        "|---|---|---:|---:|---:|---|",
    ]
    for name, unit, bval, cval, delta, verdict in rows:
        fmt = lambda v: "-" if v is None else f"{v:,.6g}"
        dtxt = "-" if delta is None else f"{delta:+.1%}"
        lines.append(f"| {name} | {unit} | {fmt(bval)} | {fmt(cval)} "
                     f"| {dtxt} | {verdict} |")
    if warnings:
        lines.append("")
        for w in warnings:
            lines.append(f"- WARNING: {w}")
    text = "\n".join(lines) + "\n"
    print(text, end="")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(text)

    if regressions:
        print(f"ddpm_bench_diff: FAIL — {len(regressions)} metric(s) "
              f"regressed beyond {args.tolerance:.0%} or breached a floor: "
              + ", ".join(regressions), file=sys.stderr)
        return 1
    print(f"ddpm_bench_diff: OK — ratchet holds over {len(rows)} metric(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
