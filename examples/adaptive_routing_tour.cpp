// Routing tour: watch every routing algorithm steer the same packet, with
// and without link failures, and verify DDPM's route-independence live.
//
//   $ ./adaptive_routing_tour [topology-spec] [src] [dst]
//   default: mesh:6x6, corner to corner
#include <iostream>

#include "marking/ddpm.hpp"
#include "marking/walk.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"
#include "topology/graph.hpp"

namespace {

using namespace ddpm;

std::string path_string(const topo::Topology& topo,
                        const std::vector<topo::NodeId>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) out += " ";
    out += topo.coord_of(path[i]).to_string();
  }
  return out;
}

void tour(const topo::Topology& topo, topo::NodeId src, topo::NodeId dst,
          const topo::LinkFailureSet* failures, const char* title) {
  std::cout << "\n=== " << title << " ===\n";
  mark::DdpmScheme scheme(topo);
  mark::DdpmIdentifier identifier(topo);
  const std::vector<std::string> router_names =
      topo.kind() == topo::TopologyKind::kMesh && topo.num_dims() == 2
          ? std::vector<std::string>{"xy", "west-first", "north-last",
                                     "negative-first", "adaptive",
                                     "adaptive-misroute", "oracle"}
          : std::vector<std::string>{"dor", "adaptive", "adaptive-misroute",
                                     "oracle"};
  for (const auto& name : router_names) {
    const auto router = route::make_router(name, topo);
    mark::WalkOptions options;
    options.failures = failures;
    options.seed = 17;
    const auto walk =
        mark::walk_packet(topo, *router, &scheme, src, dst, options);
    std::cout << "  " << name << std::string(18 - name.size(), ' ');
    switch (walk.outcome) {
      case mark::WalkOutcome::kBlocked:
        std::cout << "BLOCKED\n";
        continue;
      case mark::WalkOutcome::kTtlExpired:
        std::cout << "TTL EXPIRED (livelock bound)\n";
        continue;
      case mark::WalkOutcome::kDelivered:
        break;
    }
    const auto named = identifier.identify(dst, walk.packet.marking_field());
    std::cout << walk.hops << " hops, DDPM names "
              << topo.coord_of(*named).to_string()
              << (*named == src ? " (correct)" : " (WRONG)") << "\n"
              << "      path: " << path_string(topo, walk.path) << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string spec = argc > 1 ? argv[1] : "mesh:6x6";
  const auto topo = topo::make_topology(spec);
  const topo::NodeId src =
      argc > 2 ? topo::NodeId(std::stoul(argv[2])) : topo::NodeId(0);
  const topo::NodeId dst = argc > 3 ? topo::NodeId(std::stoul(argv[3]))
                                    : topo->num_nodes() - 1;
  std::cout << "topology " << topo->spec() << ": " << topo->num_nodes()
            << " nodes, degree " << topo->degree() << ", diameter "
            << topo->diameter() << "\nfrom " << topo->coord_of(src).to_string()
            << " to " << topo->coord_of(dst).to_string() << '\n';

  tour(*topo, src, dst, nullptr, "healthy network");

  // Fail a handful of links near the middle of a shortest path.
  topo::LinkFailureSet failures;
  const auto sp = topo::shortest_path(*topo, src, dst);
  if (sp && sp->size() > 3) {
    const std::size_t mid = sp->size() / 2;
    failures.fail((*sp)[mid - 1], (*sp)[mid]);
    failures.fail((*sp)[mid], (*sp)[mid + 1]);
    std::cout << "\nfailing links "
              << topo->coord_of((*sp)[mid - 1]).to_string() << "-"
              << topo->coord_of((*sp)[mid]).to_string() << " and "
              << topo->coord_of((*sp)[mid]).to_string() << "-"
              << topo->coord_of((*sp)[mid + 1]).to_string() << '\n';
    tour(*topo, src, dst, &failures, "after link failures");
  }

  std::cout << "\nEvery delivered packet, whatever its route, decodes to the\n"
               "same source: the telescoping distance vector at work.\n";
  return 0;
}
