// Mitigation pipeline: the closed loop the paper motivates, narrated.
//
// A SYN flood opens against one node of a 16x16 torus. The victim's
// half-open-connection detector raises the alarm; DDPM names each zombie
// from its first traced packet; the filter cuts them off at their own
// switches; the victim's half-open table drains.
//
//   $ ./mitigation_pipeline
#include <iostream>

#include "cluster/network.hpp"
#include "detect/detector.hpp"
#include "marking/ddpm.hpp"

int main() {
  using namespace ddpm;

  cluster::ClusterConfig config;
  config.topology = "torus:16x16";
  config.router = "adaptive";
  config.scheme = "ddpm";
  config.benign_rate_per_node = 0.0001;
  config.seed = 99;
  cluster::ClusterNetwork net(config);

  attack::AttackConfig attack;
  attack.kind = attack::AttackKind::kSynFlood;
  attack.victim = 120;
  {
    netsim::Rng rng(5);
    attack.zombies = attack::pick_zombies(net.topology(), 8, attack.victim, rng);
  }
  attack.rate_per_zombie = 0.005;
  attack.spoof = attack::SpoofStrategy::kRandomCluster;
  attack.start_time = 100000;
  net.set_attack(attack);

  detect::SynHalfOpenDetector detector(/*max_half_open=*/128,
                                       /*handshake_timeout=*/50000);
  mark::DdpmIdentifier identifier(net.topology());
  std::uint64_t traced = 0;

  net.set_delivery_hook([&](const pkt::Packet& p, topo::NodeId at) {
    if (at != attack.victim) return;
    const netsim::SimTime now = net.sim().now();
    detector.observe(p, now);
    if (!detector.alarmed()) return;
    // Alarmed: trace every TCP packet that is not completing a handshake.
    if (p.header.protocol() != pkt::IpProto::kTcp) return;
    ++traced;
    const auto candidates = identifier.observe(p, at);
    if (candidates.size() == 1 &&
        !net.filter().blocks_injection(candidates.front())) {
      net.filter().block_source_node(candidates.front());
      std::cout << "  t=" << now << "  DDPM names node " << candidates.front()
                << " -> blocked at its source switch (packet #" << traced
                << " traced)\n";
    }
  });

  std::cout << "=== SYN-flood mitigation pipeline on torus:16x16 ===\n"
            << "victim: node " << attack.victim << ", zombies:";
  for (auto z : attack.zombies) std::cout << ' ' << z;
  std::cout << "\nattack opens at t=" << attack.start_time << "\n\n";

  net.start();
  std::cout << "timeline (half-open connections at the victim):\n";
  for (netsim::SimTime t = 50000; t <= 600000; t += 50000) {
    net.run_until(t);
    std::cout << "  t=" << t << "  half-open=" << detector.half_open(t)
              << (detector.alarmed() && detector.alarm_time().value_or(t) <= t
                      ? "  [ALARMED]"
                      : "")
              << "  blocked-injections=" << net.metrics().blocked_at_source
              << '\n';
  }

  const bool all_blocked = net.metrics().blocked_at_source > 0 &&
                           net.filter().rule_count() == attack.zombies.size();
  std::cout << "\n" << net.metrics().summary() << "\n\nresult: "
            << (all_blocked
                    ? "all zombies quarantined; half-open table drained"
                    : "see timeline above")
            << '\n';
  return 0;
}
