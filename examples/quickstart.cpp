// Quickstart: the five-minute tour of the library.
//
// Builds an 8x8 torus cluster with adaptive routing and DDPM marking,
// launches a spoofed UDP flood from four compromised nodes, and runs the
// full pipeline: rate-based detection at the victim, one-packet source
// identification, and automatic blocking at the attackers' own switches.
//
//   $ ./quickstart
#include <iostream>

#include "core/sis.hpp"

int main() {
  using namespace ddpm;

  // 1. Describe the cluster (every knob has a sensible default).
  core::ScenarioConfig config;
  config.cluster.topology = "torus:8x8";    // paper Figure 1(b) family
  config.cluster.router = "adaptive";       // paths vary packet-to-packet
  config.cluster.scheme = "ddpm";           // the paper's contribution
  config.cluster.benign_rate_per_node = 0.0003;
  config.cluster.seed = 7;

  // 2. Describe the attack: four zombies flood node 42 with packets whose
  //    source addresses are random valid cluster addresses (spoofed).
  config.attack.kind = attack::AttackKind::kUdpFlood;
  config.attack.victim = 42;
  config.attack.zombies = {3, 17, 29, 55};
  config.attack.rate_per_zombie = 0.01;
  config.attack.spoof = attack::SpoofStrategy::kRandomCluster;
  config.attack.start_time = 50000;

  // 3. Victim-side policy: DDPM identification, auto-block on success.
  config.identifier = "ddpm";
  config.detect_rate_threshold = 0.005;  // packets/tick at the victim
  config.auto_block = true;
  config.duration = 400000;

  // 4. Run.
  core::SourceIdentificationSystem system(config);
  const core::ScenarioReport report = system.run();

  // 5. Inspect.
  std::cout << "=== quickstart: DDPM vs a spoofed UDP flood ===\n\n"
            << report.summary() << "\n\n";
  std::cout << "identification events:\n";
  for (const auto& event : report.identifications) {
    std::cout << "  t=" << event.when << "  named node " << event.identified
              << (event.correct ? "  (a real zombie)" : "  (INNOCENT!)")
              << '\n';
  }
  const bool all_found =
      report.identified_sources.size() == config.attack.zombies.size() &&
      report.false_positives == 0;
  std::cout << "\nresult: "
            << (all_found ? "every spoofing zombie identified and blocked "
                            "from single packets"
                          : "unexpected outcome — see report above")
            << '\n';
  return all_found ? 0 : 1;
}
