// Beyond direct networks — the paper's §6.3 future work, demonstrated.
//
// Three stops:
//  1. a butterfly MIN, where DDPM has no coordinates but Port-Stamp
//     Marking identifies the source terminal from one packet;
//  2. a random irregular switch network with up*/down* routing, where
//     Ingress-Stamp Marking does the same;
//  3. the honest comparison: what each scheme assumes and what it costs.
//
//   $ ./beyond_direct_networks
#include <iomanip>
#include <iostream>

#include "indirect/port_stamp.hpp"
#include "irregular/irregular.hpp"
#include "marking/ingress.hpp"
#include "netsim/rng.hpp"

int main() {
  using namespace ddpm;

  std::cout << "=== 1. Butterfly MIN: Port-Stamp Marking ===\n";
  {
    indirect::Butterfly net(4, 4);  // 4-ary 4-fly: 256 terminals
    indirect::PortStampScheme scheme(net);
    std::cout << net.spec() << ": " << net.num_terminals()
              << " terminals, " << net.num_switches() << " switches, "
              << indirect::PortStampScheme::required_bits(net)
              << " Marking Field bits\n";
    const indirect::TerminalId src = 173, dst = 9;
    std::cout << "packet " << src << " -> " << dst << ":\n";
    std::uint16_t field = 0xffff;  // attacker pre-load
    for (const auto& hop : net.route(src, dst)) {
      field = scheme.mark(field, hop.stage, hop.in_port);
      std::cout << "  stage " << hop.stage << ": switch " << hop.switch_index
                << " stamps in-port " << hop.in_port << " -> MF=0x"
                << std::hex << std::setw(4) << std::setfill('0') << field
                << std::dec << '\n';
    }
    std::cout << "  victim decodes source terminal "
              << *scheme.identify(field) << " (true: " << src << ")\n\n";
  }

  std::cout << "=== 2. Irregular network: Ingress-Stamp Marking ===\n";
  {
    irregular::IrregularTopology topo(48, 20, 2024);
    irregular::UpDownRouter router(topo);
    mark::IngressStampScheme scheme(topo.num_nodes());
    mark::IngressStampIdentifier identifier(topo.num_nodes());
    std::cout << topo.spec() << ": " << topo.num_edges()
              << " links, up*/down* path inflation "
              << router.path_inflation() << "x\n";
    netsim::Rng rng(5);
    for (int i = 0; i < 3; ++i) {
      const auto s = irregular::NodeId(rng.next_below(topo.num_nodes()));
      auto d = irregular::NodeId(rng.next_below(topo.num_nodes()));
      if (d == s) d = (d + 1) % topo.num_nodes();
      const auto path = walk_updown(topo, router, s, d, rng);
      pkt::Packet p;
      p.set_marking_field(0xbeef);  // attacker pre-load
      scheme.on_injection(p, s);
      for (std::size_t h = 1; h < path.size(); ++h) {
        scheme.on_forward(p, path[h - 1], path[h]);
      }
      std::cout << "  " << s << " -> " << d << " via " << path.size() - 1
                << " hops: victim names "
                << identifier.observe(p, d).front() << '\n';
    }
    std::cout << '\n';
  }

  std::cout <<
      "=== 3. The honest comparison ===\n"
      "All three schemes rest on the same two assumptions the paper makes\n"
      "for DDPM: switches are trusted, and the source's switch knows the\n"
      "packet came from its compute node. Given those, the identification\n"
      "budget is ceil(log2 N) bits everywhere:\n"
      "  DDPM          direct networks, per-hop arithmetic, Table 3 limits\n"
      "  Port-Stamp    unique-path MINs, per-stage stamps, 65536 terminals\n"
      "  Ingress-Stamp any topology, one stamp at injection, 65536 nodes\n"
      "DDPM's edge: interior switches need no 'first hop' knowledge and a\n"
      "lost interior mark only shifts attribution locally (see the\n"
      "partial-deployment ablation).\n";
  return 0;
}
