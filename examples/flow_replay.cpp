// flow_replay — stream a flow trace (CSV file or synthetic generator)
// through the bounded-memory sketch analyzer and report what it detected.
//
// The acceptance harness for the streaming subsystem: CI replays a
// million-distinct-source spoofed flood and asserts the analyzer detects
// it, names the victim, and stays under the sketch-memory budget:
//
//   $ ./flow_replay --generate --sources 1000000 --attack flood
//       --expect-detect --expect-victim --max-memory 4194304 --json
//
// Other uses:
//   $ ./flow_replay --trace flows.csv --json          # ingest a CSV trace
//   $ ./flow_replay --generate --write-csv flows.csv  # materialize a trace
//   $ ./flow_replay --generate --attack pulse --jobs 8
#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "flow/csv.hpp"
#include "flow/trace_gen.hpp"
#include "stream/flow_analyzer.hpp"

namespace {

using namespace ddpm;

struct Options {
  std::string trace_path;    // --trace: ingest this CSV
  bool generate = false;     // --generate: synthesize instead
  std::string write_csv;     // also materialize the generated trace
  bool json = false;
  bool expect_detect = false;
  bool expect_victim = false;
  std::size_t max_memory = 0;  // 0 = unchecked
  flow::TraceGenConfig gen;
  stream::FlowAnalyzerConfig analyzer;
};

flow::AttackShape parse_attack(const std::string& name) {
  if (name == "none") return flow::AttackShape::kNone;
  if (name == "flood") return flow::AttackShape::kFlood;
  if (name == "pulse") return flow::AttackShape::kPulse;
  if (name == "churn") return flow::AttackShape::kChurn;
  throw std::invalid_argument("unknown attack shape: " + name);
}

void print_usage() {
  std::cout
      << "flow_replay [--trace flows.csv | --generate]\n"
         "  --generate options:\n"
         "    --sources N        distinct spoofed attack sources\n"
         "    --benign N         distinct benign sources\n"
         "    --attack KIND      none | flood | pulse | churn\n"
         "    --victim ADDR      attack destination address\n"
         "    --duration TICKS   trace length\n"
         "    --seed N           generator seed\n"
         "    --write-csv FILE   also write the trace as CSV\n"
         "  analyzer options:\n"
         "    --jobs N           worker threads (output is identical for any N)\n"
         "    --window TICKS     tumbling-window length\n"
         "    --shards N         structural shard count\n"
         "  output / acceptance:\n"
         "    --json             print the full report as JSON\n"
         "    --expect-detect    exit 1 unless an alarm fired\n"
         "    --expect-victim    exit 1 unless the victim was named correctly\n"
         "    --max-memory B     exit 1 if sketch memory exceeds B bytes\n";
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--trace") {
      opt.trace_path = value();
    } else if (arg == "--generate") {
      opt.generate = true;
    } else if (arg == "--write-csv") {
      opt.write_csv = value();
    } else if (arg == "--sources") {
      opt.gen.attack_sources = std::uint32_t(std::stoul(value()));
    } else if (arg == "--benign") {
      opt.gen.benign_sources = std::uint32_t(std::stoul(value()));
    } else if (arg == "--attack") {
      opt.gen.attack = parse_attack(value());
    } else if (arg == "--victim") {
      opt.gen.victim = std::uint32_t(std::stoul(value()));
    } else if (arg == "--duration") {
      opt.gen.duration = std::stoull(value());
    } else if (arg == "--seed") {
      opt.gen.seed = std::stoull(value());
    } else if (arg == "--jobs") {
      opt.analyzer.jobs = std::stoul(value());
    } else if (arg == "--window") {
      opt.analyzer.window = std::stoull(value());
    } else if (arg == "--shards") {
      opt.analyzer.shards = std::uint32_t(std::stoul(value()));
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--expect-detect") {
      opt.expect_detect = true;
    } else if (arg == "--expect-victim") {
      opt.expect_victim = true;
    } else if (arg == "--max-memory") {
      opt.max_memory = std::stoul(value());
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown option: " + arg);
    }
  }
  if (opt.generate && !opt.trace_path.empty()) {
    throw std::invalid_argument("--trace and --generate are exclusive");
  }
  if (!opt.generate && opt.trace_path.empty()) {
    throw std::invalid_argument("pass either --trace FILE or --generate");
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Options opt = parse(argc, argv);

    // An attack that should exhibit N distinct sources must emit at least
    // N attack flows: scale the rate so the flood covers its source pool
    // with ~25% headroom.
    if (opt.generate && opt.gen.attack != flow::AttackShape::kNone &&
        opt.gen.attack_duration > 0) {
      const double cover =
          1.25 * double(opt.gen.attack_sources) / double(opt.gen.attack_duration);
      if (opt.gen.attack_rate < cover) opt.gen.attack_rate = cover;
    }

    stream::StreamReport report;
    if (opt.generate) {
      flow::TraceGenerator gen(opt.gen);
      if (!opt.write_csv.empty()) {
        // Materialize (trace + analyzer see identical records).
        const std::vector<flow::FlowRecord> records =
            [&] { return flow::TraceGenerator(opt.gen).generate(); }();
        flow::write_csv_file(opt.write_csv, records);
        report = stream::replay(records, opt.analyzer);
      } else {
        report = stream::replay(gen, opt.analyzer);
      }
    } else {
      stream::FlowStreamAnalyzer analyzer(opt.analyzer);
      flow::CsvStats stats = flow::read_csv_file(
          opt.trace_path,
          [&](const flow::FlowRecord& r) { analyzer.ingest(r); });
      std::cerr << "read " << stats.records << " records (" << stats.malformed
                << " malformed lines skipped)\n";
      report = analyzer.finish();
    }

    if (opt.json) {
      std::cout << report.to_json();
    } else {
      std::cout << "records=" << report.records
                << " windows=" << report.windows << " detected="
                << (report.detection_time ? std::to_string(*report.detection_time)
                                          : std::string("never"))
                << " victim="
                << (report.victim_identified ? std::to_string(report.victim)
                                             : std::string("unknown"))
                << " sketch_memory=" << report.memory_bytes << "B\n";
    }

    int rc = 0;
    if (opt.expect_detect && !report.detection_time) {
      std::cerr << "FAIL: no alarm fired\n";
      rc = 1;
    }
    if (opt.expect_victim &&
        (!report.victim_identified || report.victim != opt.gen.victim)) {
      std::cerr << "FAIL: victim not identified (wanted " << opt.gen.victim
                << ")\n";
      rc = 1;
    }
    if (opt.max_memory > 0 && report.memory_bytes > opt.max_memory) {
      std::cerr << "FAIL: sketch memory " << report.memory_bytes
                << " B exceeds budget " << opt.max_memory << " B\n";
      rc = 1;
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "flow_replay: " << e.what() << '\n';
    return 2;
  }
}
