// ddpm_sim — command-line scenario driver for the whole library.
//
// Runs a configurable attack scenario end to end and prints the scenario
// report. Every knob of ScenarioConfig is reachable from the command line,
// making this the tool for parameter sweeps outside the fixed benches.
//
//   $ ./ddpm_sim --topology torus:8x8 --router adaptive --scheme ddpm
//       (continued:) --attack udp-flood --zombies 4 --victim 42 --attack-rate 0.01
//   $ ./ddpm_sim --help
#include <cstring>
#include <iostream>
#include <sstream>

#include <fstream>

#include "core/experiment.hpp"
#include "core/report_json.hpp"
#include "core/sis.hpp"
#include "analysis/attack_graph.hpp"
#include "telemetry/probes.hpp"
#include "telemetry/trace.hpp"
#include "trace/trace.hpp"

namespace {

using namespace ddpm;

void usage() {
  std::cout <<
      "ddpm_sim — DDoS source-identification scenario driver\n\n"
      "cluster options:\n"
      "  --topology SPEC      mesh:AxB[xC] | torus:AxB[xC] | hypercube:N\n"
      "                       (default torus:8x8)\n"
      "  --router NAME        dor|xy|west-first|north-last|negative-first|\n"
      "                       adaptive|adaptive-misroute|oracle (default adaptive)\n"
      "  --scheme NAME        ddpm|dpm|ppm-full|ppm-xor|ppm-bitdiff|none\n"
      "                       (default ddpm; also used as the identifier)\n"
      "  --pattern NAME       uniform|transpose|complement|bit-reverse|hotspot\n"
      "  --benign-rate R      benign packets/tick/node (default 0.0003)\n"
      "  --seed N             RNG seed (default 42)\n"
      "  --ingress-filter     enable RFC 2267 filtering at source switches\n\n"
      "attack options:\n"
      "  --attack KIND        none|udp-flood|syn-flood|worm|reflector\n"
      "                       (default udp-flood)\n"
      "  --victim N           victim node id (default: last node)\n"
      "  --zombies N          number of compromised nodes (default 4)\n"
      "  --attack-rate R      attack packets/tick/zombie (default 0.01)\n"
      "  --spoof NAME         none|random-cluster|random-any|victim-reflect\n"
      "  --attack-start T     attack start tick (default 50000)\n\n"
      "pipeline options:\n"
      "  --detector NAME      rate-threshold|entropy|cusum|syn-half-open|\n"
      "                       sketch-entropy|heavy-hitter|sketch-cusum\n"
      "                       (default rate-threshold; sketch-* run in\n"
      "                       bounded memory, see docs/STREAMING.md)\n"
      "  --threshold R        detection rate threshold (default 0.005)\n"
      "  --pulse-period T     pulsing attack period (0 = continuous)\n"
      "  --pulse-duty R       on-fraction of each pulse period\n"
      "  --no-block           identify only, do not block\n"
      "  --classifier-fp R    classifier false-positive rate (default 0)\n"
      "  --duration T         simulated ticks (default 400000)\n"
      "  --repeat N           run N seeds and report aggregate statistics\n"
      "  --json               emit the config+report as JSON on stdout\n"
      "  --trace FILE         write a Chrome trace_event JSON of the run\n"
      "                       (open in chrome://tracing or Perfetto)\n"
      "  --metrics FILE       write the telemetry registry snapshot as JSON\n"
      "                       (works with --repeat: replications merged)\n"
      "  --delivery-log FILE  write a CSV log of victim deliveries\n"
      "  --dot FILE           write a Graphviz attack graph of verdicts\n";
}

attack::AttackKind parse_kind(const std::string& s) {
  if (s == "none") return attack::AttackKind::kNone;
  if (s == "udp-flood") return attack::AttackKind::kUdpFlood;
  if (s == "syn-flood") return attack::AttackKind::kSynFlood;
  if (s == "worm") return attack::AttackKind::kWorm;
  if (s == "reflector") return attack::AttackKind::kReflector;
  throw std::invalid_argument("unknown attack kind: " + s);
}

attack::SpoofStrategy parse_spoof(const std::string& s) {
  if (s == "none") return attack::SpoofStrategy::kNone;
  if (s == "random-cluster") return attack::SpoofStrategy::kRandomCluster;
  if (s == "random-any") return attack::SpoofStrategy::kRandomAny;
  if (s == "victim-reflect") return attack::SpoofStrategy::kVictimReflect;
  throw std::invalid_argument("unknown spoof strategy: " + s);
}

}  // namespace

int main(int argc, char** argv) {
  core::ScenarioConfig config;
  config.cluster.topology = "torus:8x8";
  config.cluster.router = "adaptive";
  config.cluster.scheme = "ddpm";
  config.cluster.benign_rate_per_node = 0.0003;
  config.identifier = "ddpm";
  config.attack.kind = attack::AttackKind::kUdpFlood;
  config.attack.rate_per_zombie = 0.01;
  config.attack.start_time = 50000;
  config.detect_rate_threshold = 0.005;
  config.duration = 400000;

  std::size_t zombie_count = 4;
  bool victim_given = false;
  bool json_output = false;
  std::string trace_path;
  std::string metrics_path;
  std::string delivery_log_path;
  std::string dot_path;
  std::size_t repeat = 0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--topology") {
        config.cluster.topology = value();
      } else if (arg == "--router") {
        config.cluster.router = value();
      } else if (arg == "--scheme") {
        config.cluster.scheme = value();
        config.identifier = config.cluster.scheme;
      } else if (arg == "--pattern") {
        config.cluster.pattern = value();
      } else if (arg == "--detector") {
        config.detector = value();
      } else if (arg == "--benign-rate") {
        config.cluster.benign_rate_per_node = std::stod(value());
      } else if (arg == "--seed") {
        config.cluster.seed = std::stoull(value());
      } else if (arg == "--ingress-filter") {
        config.cluster.ingress_filtering = true;
      } else if (arg == "--attack") {
        config.attack.kind = parse_kind(value());
      } else if (arg == "--victim") {
        config.attack.victim = topo::NodeId(std::stoul(value()));
        victim_given = true;
      } else if (arg == "--zombies") {
        zombie_count = std::stoul(value());
      } else if (arg == "--attack-rate") {
        config.attack.rate_per_zombie = std::stod(value());
      } else if (arg == "--spoof") {
        config.attack.spoof = parse_spoof(value());
      } else if (arg == "--attack-start") {
        config.attack.start_time = std::stoull(value());
      } else if (arg == "--pulse-period") {
        config.attack.pulse_period = std::stoull(value());
      } else if (arg == "--pulse-duty") {
        config.attack.pulse_duty = std::stod(value());
      } else if (arg == "--threshold") {
        config.detect_rate_threshold = std::stod(value());
      } else if (arg == "--no-block") {
        config.auto_block = false;
      } else if (arg == "--classifier-fp") {
        config.classifier_false_positive_rate = std::stod(value());
      } else if (arg == "--duration") {
        config.duration = std::stoull(value());
      } else if (arg == "--json") {
        json_output = true;
      } else if (arg == "--trace") {
        trace_path = value();
      } else if (arg == "--metrics") {
        metrics_path = value();
      } else if (arg == "--delivery-log") {
        delivery_log_path = value();
      } else if (arg == "--dot") {
        dot_path = value();
      } else if (arg == "--repeat") {
        repeat = std::stoul(value());
      } else {
        throw std::invalid_argument("unknown option: " + arg +
                                    " (try --help)");
      }
    }

    // Late resolution: victim and zombies depend on the topology size.
    const auto probe = topo::make_topology(config.cluster.topology);
    if (!victim_given) config.attack.victim = probe->num_nodes() - 1;
    if (config.attack.kind != attack::AttackKind::kNone) {
      netsim::Rng rng(config.cluster.seed ^ 0x20b1e5ULL);
      config.attack.zombies =
          attack::pick_zombies(*probe, zombie_count, config.attack.victim, rng);
    }

    if (!json_output) {
      std::cout << "scenario: " << config.cluster.topology << ", router "
                << config.cluster.router << ", scheme "
                << config.cluster.scheme << ", attack "
                << attack::to_string(config.attack.kind) << " on node "
                << config.attack.victim << " by "
                << config.attack.zombies.size() << " zombies (spoof "
                << attack::to_string(config.attack.spoof) << ")\n\n";
    }

    auto open_output = [](const std::string& path) {
      std::ofstream file(path);
      if (!file) throw std::invalid_argument("cannot open file: " + path);
      return file;
    };
    auto write_metrics = [&](const telemetry::MetricsSnapshot& snapshot) {
      if (metrics_path.empty()) return;
      auto file = open_output(metrics_path);
      file << snapshot.to_json() << '\n';
      if (!json_output) {
        std::cout << "metrics: " << snapshot.series() << " series -> "
                  << metrics_path << '\n';
      }
    };

    if (repeat > 0) {
      if (!trace_path.empty()) {
        throw std::invalid_argument("--trace needs a single run (drop --repeat)");
      }
      const auto summary = core::run_repeated_n(config, repeat);
      write_metrics(summary.telemetry);
      std::cout << summary.to_string() << '\n';
      return 0;
    }

    core::SourceIdentificationSystem system(config);
    telemetry::Tracer chrome_tracer;
    if (!trace_path.empty()) {
      telemetry::name_standard_processes(chrome_tracer);
      system.set_tracer(&chrome_tracer);
    }
    std::ofstream delivery_log_file;
    std::unique_ptr<trace::TraceWriter> tracer;
    if (!delivery_log_path.empty()) {
      delivery_log_file = open_output(delivery_log_path);
      tracer = std::make_unique<trace::TraceWriter>(delivery_log_file);
      const auto victim = config.attack.victim;
      system.set_observer([&tracer, victim](const pkt::Packet& p,
                                            topo::NodeId at) {
        if (at == victim) tracer->record(p, at);
      });
    }
    const core::ScenarioReport report = system.run();
    if (!trace_path.empty()) {
      auto trace_file = open_output(trace_path);
      chrome_tracer.flush(trace_file);
      if (!json_output) {
        std::cout << "trace: " << chrome_tracer.retained() << " events ("
                  << chrome_tracer.dropped() << " dropped) -> " << trace_path
                  << '\n';
      }
    }
    write_metrics(report.telemetry);
    if (!dot_path.empty()) {
      analysis::AttackGraph graph(config.attack.victim);
      for (const auto& e : report.identifications) {
        graph.add_source(e.identified);
      }
      const auto topo = topo::make_topology(config.cluster.topology);
      std::ofstream dot_file(dot_path);
      if (!dot_file) {
        throw std::invalid_argument("cannot open dot file: " + dot_path);
      }
      dot_file << graph.to_dot(topo.get());
      if (!json_output) {
        std::cout << "attack graph (" << report.identifications.size()
                  << " verdicts) -> " << dot_path << "\n";
      }
    }
    if (tracer && !json_output) {
      std::cout << "delivery log: " << tracer->records_written()
                << " victim deliveries -> " << delivery_log_path << "\n\n";
    }
    if (json_output) {
      std::cout << core::to_json(config, report) << '\n';
      return 0;
    }
    std::cout << report.summary() << '\n';
    if (!report.identifications.empty()) {
      std::cout << "\nidentifications:\n";
      for (const auto& e : report.identifications) {
        std::cout << "  t=" << e.when << "  node " << e.identified
                  << (e.correct ? "" : "  (innocent!)") << '\n';
      }
    }
    return 0;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << '\n';
    return 1;
  }
}
