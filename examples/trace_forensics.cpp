// Trace forensics: the offline half of the workflow.
//
// Reads a CSV trace captured with `ddpm_sim --trace` (or any TraceWriter),
// replays it through a chosen identifier, scores against the recorded
// ground truth, and optionally emits a Graphviz attack graph.
//
//   $ ./ddpm_sim --topology mesh:8x8 --trace /tmp/attack.csv
//   $ ./trace_forensics /tmp/attack.csv mesh:8x8 ddpm --dot /tmp/attack.dot
#include <fstream>
#include <iostream>

#include "analysis/attack_graph.hpp"
#include "core/sis.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  using namespace ddpm;
  if (argc < 4) {
    std::cout << "usage: trace_forensics TRACE.csv TOPOLOGY-SPEC IDENTIFIER "
                 "[--dot FILE]\n"
                 "identifiers: ddpm|dpm|ppm-full|ppm-xor|ppm-bitdiff|"
                 "ppm-fragment\n";
    return argc == 1 ? 0 : 1;
  }
  try {
    const std::string trace_path = argv[1];
    const std::string spec = argv[2];
    const std::string identifier_name = argv[3];
    std::string dot_path;
    for (int i = 4; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--dot") dot_path = argv[i + 1];
    }

    std::ifstream in(trace_path);
    if (!in) throw std::invalid_argument("cannot open " + trace_path);
    const auto records = trace::read_trace(in);
    if (records.empty()) {
      std::cout << "trace is empty\n";
      return 0;
    }
    // The victim is whoever received the recorded deliveries (a capture
    // from ddpm_sim --trace is single-victim by construction).
    const topo::NodeId victim = records.front().delivered_at;

    const auto topo = topo::make_topology(spec);
    const auto identifier =
        core::make_identifier(identifier_name, *topo, victim, 64);
    if (!identifier) throw std::invalid_argument("identifier is 'none'");

    const auto result = trace::replay(records, *identifier, victim);
    std::cout << "trace: " << records.size() << " records, victim node "
              << victim << "\n"
              << "replayed " << result.packets << " packets through "
              << identifier->name() << ":\n"
              << "  single-candidate verdicts: " << result.identified << "\n"
              << "  correct:                   " << result.correct << "\n"
              << "  misattributed:             " << result.misattributed
              << "\n  unique sources named:      " << result.named.size()
              << "\n";

    if (!dot_path.empty()) {
      analysis::AttackGraph graph(victim);
      // Re-walk the records so the graph carries per-source packet counts.
      const auto scorer =
          core::make_identifier(identifier_name, *topo, victim, 64);
      for (const auto& r : records) {
        if (r.delivered_at != victim) continue;
        pkt::Packet p;
        p.header = pkt::IpHeader(r.claimed_source, r.dest_address,
                                 pkt::IpProto(r.protocol), 0);
        p.set_marking_field(r.marking_field);
        p.flow = r.flow;
        const auto named = scorer->observe(p, victim);
        if (named.size() == 1) graph.add_source(named.front());
      }
      std::ofstream out(dot_path);
      if (!out) throw std::invalid_argument("cannot open " + dot_path);
      out << graph.to_dot(topo.get());
      std::cout << "attack graph -> " << dot_path << "\n";
    }
    return 0;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << '\n';
    return 1;
  }
}
