// Attack forensics: what each traceback scheme can tell a victim about one
// spoofed packet — and what it cannot.
//
// Replays the same attack episode (random zombies, adaptive routing,
// spoofed source addresses) three times, once per scheme, and prints a
// per-packet forensic comparison: the address the header *claims*, against
// what the Marking Field *proves*.
//
//   $ ./attack_forensics [topology-spec]     (default mesh:8x8)
#include <iomanip>
#include <iostream>

#include "attack/attacker.hpp"
#include "core/sis.hpp"
#include "marking/factory.hpp"
#include "marking/walk.hpp"
#include "packet/address_map.hpp"
#include "routing/router.hpp"
#include "topology/factory.hpp"

namespace {

using namespace ddpm;

void forensics_for(const topo::Topology& topo, const std::string& scheme_name,
                   const std::vector<topo::NodeId>& zombies,
                   topo::NodeId victim) {
  std::cout << "\n--- scheme: " << scheme_name << " ---\n";
  const auto router = route::make_router("adaptive", topo);
  const auto scheme = mark::make_scheme(scheme_name, topo, 0.2, 99);
  const auto identifier = core::make_identifier(scheme_name, topo, victim, 64);
  pkt::AddressMap addresses(topo.num_nodes());
  netsim::Rng rng(2718);

  std::cout << std::left << std::setw(8) << "packet" << std::setw(10)
            << "zombie" << std::setw(18) << "claimed source" << std::setw(26)
            << "scheme's verdict" << "note\n";
  int shown = 0;
  for (int n = 0; n < 400; ++n) {
    const auto zombie = zombies[std::size_t(n) % zombies.size()];
    mark::WalkOptions options;
    options.seed = rng.next_u64();
    options.record_path = false;
    auto walk = mark::walk_packet(topo, *router, scheme.get(), zombie, victim,
                                  options);
    if (!walk.delivered()) continue;
    // Spoof AFTER marking, like a zombie forging its header; the marking
    // field was written by switches and is beyond the attacker's reach.
    attack::apply_spoof(walk.packet, attack::SpoofStrategy::kRandomCluster,
                        addresses, zombie, victim, rng);
    const auto candidates = identifier->observe(walk.packet, victim);
    if (shown < 6 || (n + 1) % 100 == 0) {
      std::string verdict;
      if (candidates.empty()) {
        verdict = "(nothing yet)";
      } else if (candidates.size() == 1) {
        verdict = "node " + std::to_string(candidates.front());
      } else {
        verdict = std::to_string(candidates.size()) + " candidates";
      }
      std::string note;
      if (candidates.size() == 1) {
        note = candidates.front() == zombie ? "correct!" : "WRONG";
      }
      std::cout << std::setw(8) << n + 1 << std::setw(10) << zombie
                << std::setw(18)
                << pkt::address_to_string(walk.packet.header.source())
                << std::setw(26) << verdict << note << '\n';
      ++shown;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string spec = argc > 1 ? argv[1] : "mesh:8x8";
  const auto topo = topo::make_topology(spec);
  std::cout << "=== attack forensics on " << spec << " ===\n"
            << "Zombies flood the victim with spoofed source addresses over\n"
            << "adaptive routes; each scheme's victim-side identifier reads\n"
            << "only the 16-bit Marking Field.\n";

  netsim::Rng rng(7);
  const topo::NodeId victim = topo->num_nodes() - 1;
  const auto zombies = attack::pick_zombies(*topo, 3, victim, rng);
  std::cout << "victim: node " << victim << ", zombies:";
  for (auto z : zombies) std::cout << ' ' << z;
  std::cout << '\n';

  for (const char* scheme : {"ddpm", "dpm", "ppm-full"}) {
    forensics_for(*topo, scheme, zombies, victim);
  }

  std::cout << "\nTakeaway: the claimed source address is worthless under\n"
               "spoofing. DDPM's distance vector names the true origin from\n"
               "the first packet; DPM needs its trained (stable-route)\n"
               "signatures and misfires under adaptive routing; PPM slowly\n"
               "assembles paths from many packets.\n";
  return 0;
}
