// ddpm_verify — static design-space verifier (docs/VERIFICATION.md).
//
// Proves, without simulating a single cycle:
//   --cdg          channel-dependency deadlock verdicts for every
//                  Topology x Router factory combo,
//   --invariant    the telescoping marking identity V = D - S (D ^ S on
//                  hypercubes) at every route prefix, exhaustively on
//                  small radices and sampled above,
//   --injectivity  that no two sources share a field value for a fixed
//                  destination,
//   --width        the paper's Tables 1-3 bit budgets against the real
//                  DdpmCodec layout and factory limits.
//   --model        bounded exhaustive model checking of the wormhole
//                  VC/credit protocol on the small-configuration grid,
//                  with witness replay on conviction.
//
// --all (the default) runs everything. --json FILE writes the verdict
// table the `verify` CI job diffs against tools/ddpm_verify_baseline.json;
// --markdown prints the tables EXPERIMENTS.md embeds; --witness-dir DIR
// saves each convicted model configuration's replayable counterexample as
// DIR/witness_N.json (the artifact the `verify-model` CI job uploads on
// failure). Exit status is the number of failing verdicts (0 = the design
// space is certified).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "verify/design_space.hpp"
#include "verify/model/suite.hpp"
#include "verify/width_cert.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--all] [--cdg] [--invariant] [--injectivity] [--width]\n"
               "       [--model] [--json FILE] [--markdown] "
               "[--witness-dir DIR]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool want_cdg = false, want_invariant = false, want_injectivity = false,
       want_width = false, want_model = false, markdown = false;
  std::string json_path;
  std::string witness_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--all") {
      want_cdg = want_invariant = want_injectivity = want_width =
          want_model = true;
    } else if (arg == "--cdg") {
      want_cdg = true;
    } else if (arg == "--invariant") {
      want_invariant = true;
    } else if (arg == "--injectivity") {
      want_injectivity = true;
    } else if (arg == "--width") {
      want_width = true;
    } else if (arg == "--model") {
      want_model = true;
    } else if (arg == "--markdown") {
      markdown = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--witness-dir" && i + 1 < argc) {
      witness_dir = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (!want_cdg && !want_invariant && !want_injectivity && !want_width &&
      !want_model) {
    want_cdg = want_invariant = want_injectivity = want_width = want_model =
        true;
  }

  ddpm::verify::Report report;
  if (want_cdg) report.cdg = ddpm::verify::run_cdg_suite();
  if (want_invariant) report.invariant = ddpm::verify::run_invariant_suite();
  if (want_injectivity) {
    report.injectivity = ddpm::verify::run_injectivity_suite();
  }
  if (want_width) report.width = ddpm::verify::certify_widths();
  std::vector<ddpm::verify::model::ModelWitness> witnesses;
  if (want_model) report.model = ddpm::verify::model::run_model_suite(&witnesses);
  for (std::size_t i = 0; i < witnesses.size(); ++i) {
    if (witness_dir.empty()) break;
    const std::string path =
        witness_dir + "/witness_" + std::to_string(i) + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "ddpm_verify: cannot write " << path << "\n";
      return 2;
    }
    out << witnesses[i].to_json();
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "ddpm_verify: cannot write " << json_path << "\n";
      return 2;
    }
    out << report.to_json();
  }
  if (markdown) {
    std::cout << report.to_markdown();
  } else {
    std::cout << "ddpm_verify: " << report.rows() << " verdicts, "
              << report.failures() << " failing\n";
    for (const auto& v : report.cdg) {
      if (v.pass) continue;
      std::cout << "  FAIL cdg " << v.topology << " x " << v.router << ": "
                << v.note << "\n";
      for (const auto& name : v.cycle) std::cout << "       " << name << "\n";
    }
    for (const auto& v : report.invariant) {
      if (!v.pass) {
        std::cout << "  FAIL invariant " << v.topology << ": " << v.note
                  << "\n";
      }
    }
    for (const auto& v : report.injectivity) {
      if (!v.pass) {
        std::cout << "  FAIL injectivity " << v.topology << ": " << v.note
                  << "\n";
      }
    }
    for (const auto& v : report.width) {
      if (!v.pass) {
        std::cout << "  FAIL width " << v.check << ": " << v.note << "\n";
      }
    }
    for (const auto& v : report.model) {
      if (!v.pass) {
        std::cout << "  FAIL model " << v.topology << " x " << v.router
                  << " vcs=" << v.vcs << " depth=" << v.depth << ": "
                  << (v.violated.empty() ? "incomplete" : v.violated)
                  << (v.note.empty() ? "" : " — " + v.note) << "\n";
      }
    }
  }
  return report.failures() == 0 ? 0 : 1;
}
