// sweep — grid experiment driver emitting CSV for downstream analysis.
//
// Runs the detect→identify→block scenario over a cross product of
// topologies, schemes, routers and attack rates, each replicated over
// disjoint RNG streams, and prints one CSV row per cell with mean
// outcomes. Replications fan out across --jobs threads; the CSV is
// bit-identical for any --jobs value (asserted by the determinism suite).
// Pipe it into your plotting tool of choice:
//
//   $ ./sweep --jobs 8 > sweep.csv
//   $ ./sweep --topologies mesh:8x8,torus:8x8 --schemes ddpm,dpm
//       (continued:) --routers dor,adaptive --rates 0.002,0.01 --seeds 5
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/sweep_grid.hpp"

namespace {

using namespace ddpm;

std::vector<std::string> split(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<double> split_doubles(const std::string& text) {
  std::vector<double> out;
  for (const auto& item : split(text)) out.push_back(std::stod(item));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  core::SweepSpec spec;
  std::string metrics_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--topologies") {
        spec.topologies = split(value());
      } else if (arg == "--schemes") {
        spec.schemes = split(value());
      } else if (arg == "--routers") {
        spec.routers = split(value());
      } else if (arg == "--rates") {
        spec.rates = split_doubles(value());
      } else if (arg == "--seeds") {
        spec.seeds = std::stoul(value());
      } else if (arg == "--jobs") {
        spec.jobs = std::stoul(value());
      } else if (arg == "--metrics") {
        metrics_path = value();
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "sweep --topologies a,b --schemes a,b --routers a,b "
                     "--rates r1,r2 --seeds N --jobs N "
                     "[--metrics telemetry.json]\n";
        return 0;
      } else {
        throw std::invalid_argument("unknown option: " + arg);
      }
    }

    const auto cells = core::run_sweep(spec);
    std::cout << core::sweep_csv(cells);
    if (!metrics_path.empty()) {
      std::ofstream file(metrics_path);
      if (!file) {
        throw std::invalid_argument("cannot open metrics file: " + metrics_path);
      }
      file << core::sweep_metrics_json(cells) << '\n';
    }
    return 0;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << '\n';
    return 1;
  }
}
