// sweep — grid experiment driver emitting CSV for downstream analysis.
//
// Runs the detect→identify→block scenario over a cross product of
// topologies, schemes, routers and attack rates, each repeated over seeds,
// and prints one CSV row per cell with mean outcomes. Pipe it into your
// plotting tool of choice:
//
//   $ ./sweep > sweep.csv
//   $ ./sweep --topologies mesh:8x8,torus:8x8 --schemes ddpm,dpm
//       (continued:) --routers dor,adaptive --rates 0.002,0.01 --seeds 5
#include <iostream>
#include <sstream>
#include <vector>

#include "core/experiment.hpp"

namespace {

using namespace ddpm;

std::vector<std::string> split(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> topologies{"mesh:8x8", "torus:8x8", "hypercube:6"};
  std::vector<std::string> schemes{"ddpm", "dpm", "ppm-full"};
  std::vector<std::string> routers{"dor", "adaptive"};
  std::vector<std::string> rates{"0.005", "0.01"};
  std::size_t seeds = 3;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--topologies") {
        topologies = split(value());
      } else if (arg == "--schemes") {
        schemes = split(value());
      } else if (arg == "--routers") {
        routers = split(value());
      } else if (arg == "--rates") {
        rates = split(value());
      } else if (arg == "--seeds") {
        seeds = std::stoul(value());
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "sweep --topologies a,b --schemes a,b --routers a,b "
                     "--rates r1,r2 --seeds N\n";
        return 0;
      } else {
        throw std::invalid_argument("unknown option: " + arg);
      }
    }

    std::cout << "topology,scheme,router,attack_rate,seeds,detected_runs,"
                 "detect_latency_mean,detect_latency_sd,tp_mean,fp_mean,"
                 "packets_to_first_id,perfect_runs\n";
    for (const auto& topology : topologies) {
      for (const auto& scheme : schemes) {
        for (const auto& router : routers) {
          for (const auto& rate : rates) {
            core::ScenarioConfig config;
            config.cluster.topology = topology;
            config.cluster.router = router;
            config.cluster.scheme = scheme;
            config.cluster.benign_rate_per_node = 0.0002;
            config.identifier = scheme;
            config.detect_rate_threshold = 0.005;
            config.duration = 300000;
            config.attack.kind = attack::AttackKind::kUdpFlood;
            config.attack.rate_per_zombie = std::stod(rate);
            config.attack.start_time = 20000;
            const auto probe = topo::make_topology(topology);
            config.attack.victim = probe->num_nodes() - 1;
            {
              netsim::Rng rng(99);
              config.attack.zombies =
                  attack::pick_zombies(*probe, 4, config.attack.victim, rng);
            }
            const auto s = core::run_repeated_n(config, seeds);
            std::cout << topology << ',' << scheme << ',' << router << ','
                      << rate << ',' << s.runs << ',' << s.detected_runs
                      << ',' << s.detection_latency.mean() << ','
                      << s.detection_latency.stddev() << ','
                      << s.true_positives.mean() << ','
                      << s.false_positives.mean() << ','
                      << s.packets_to_first_identification.mean() << ','
                      << s.perfect_runs << '\n';
          }
        }
      }
    }
    return 0;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << '\n';
    return 1;
  }
}
